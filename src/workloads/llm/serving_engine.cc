#include "workloads/llm/serving_engine.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "alloc/pim_malloc.hh"
#include "core/pim_system.hh"
#include "core/rank_scheduler.hh"
#include "fault/injector.hh"
#include "telemetry/registry.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workloads/llm/kv_cache.hh"
#include "workloads/microbench.hh"

namespace pim::workloads::llm {

double
calibratedAllocLatency(core::AllocatorKind kind, unsigned tasklets,
                       uint32_t block_bytes)
{
    using Key = std::tuple<core::AllocatorKind, unsigned, uint32_t>;
    static std::mutex mu;
    static std::map<Key, double> cache;
    const Key key{kind, tasklets, block_bytes};
    {
        std::lock_guard<std::mutex> lock(mu);
        if (const auto it = cache.find(key); it != cache.end())
            return it->second;
    }
    // Run the microbenchmark outside the lock (it is deterministic, so
    // a racing duplicate run computes the same value).
    MicrobenchConfig mb;
    mb.allocator = kind;
    mb.tasklets = tasklets;
    mb.allocsPerTasklet = 128;
    mb.allocSize = block_bytes;
    mb.freeEachAlloc = false;
    const MicrobenchResult r = runMicrobench(mb);
    const double sec = r.avgLatencyUs * 1e-6;
    std::lock_guard<std::mutex> lock(mu);
    cache.emplace(key, sec);
    return sec;
}

namespace {

/**
 * Memory-imposed concurrent-batch bound of one scheme when the KV cache
 * is sharded across @p num_dpus DPUs (the whole system in lockstep
 * mode, the decode partition in disaggregated mode).
 */
unsigned
batchLimit(const ServingScheme &scheme, const ServingConfig &cfg,
           unsigned num_dpus)
{
    const alloc::PimMallocConfig heap_cfg;
    const uint64_t heap = heap_cfg.heapBytes;
    const uint64_t per_token = cfg.model.kvBytesPerTokenPerDpu(num_dpus);
    if (!scheme.allocator) {
        // Static: every slot reserves the model's full context window.
        return static_cast<unsigned>(
            heap / (per_token * cfg.staticReserveTokens));
    }
    // Dynamic: requests occupy only their actual (block-rounded) size;
    // in this trace every request peaks at prompt+output tokens.
    const uint64_t per_req_bytes =
        (per_token * (cfg.promptTokens + cfg.outputTokens)
         + cfg.kvBlockBytes - 1)
        / cfg.kvBlockBytes * cfg.kvBlockBytes;
    // Leave headroom for allocator metadata and pre-populated spans.
    return static_cast<unsigned>(heap * 95 / 100 / per_req_bytes);
}

/** The Poisson arrival times of the serving trace. */
std::vector<double>
arrivalTimes(const ServingConfig &cfg)
{
    util::Rng rng(cfg.seed);
    std::vector<double> arrivals(cfg.numRequests);
    double at = 0.0;
    for (auto &a : arrivals) {
        at += rng.exponential(cfg.arrivalRatePerSec);
        a = at;
    }
    return arrivals;
}

struct ActiveRequest
{
    unsigned id;
    unsigned context; ///< tokens currently in the KV cache
    unsigned generated = 0;
    /** Completion time of the request's latest token (TPOT base). */
    double lastTokenSec = 0.0;
};

/** Per-materialized-DPU prefill state, persistent across waves. Each
 *  slot is only ever touched by the engine worker simulating it. */
struct PrefillSlot
{
    std::unique_ptr<alloc::Allocator> allocator; ///< dynamic schemes
    std::unique_ptr<KvCacheManager> kv;
    /** Requests of the previous wave (their transient prompt KV is
     *  released at the start of the next wave, post-migration). */
    unsigned prevWaveRequests = 0;
};

} // namespace

ServingEngine::ServingEngine(const ServingScheme &scheme,
                             const ServingEngineConfig &cfg)
    : scheme_(scheme), cfg_(cfg)
{
}

ServingResult
ServingEngine::run()
{
    return cfg_.mode == ServingMode::Disaggregated ? runDisaggregated()
                                                   : runLockstep();
}

ServingResult
ServingEngine::runLockstep()
{
    const ServingConfig &cfg = cfg_.base;
    ServingResult res;
    res.maxBatchLimit = batchLimit(scheme_, cfg, cfg.numDpus);
    // A zero batch bound (per-request reservation exceeds the heap)
    // would spin the admission loop forever once arrivals run out.
    PIM_ASSERT(res.maxBatchLimit >= 1,
               "KV heap cannot hold a single request (", cfg.numDpus,
               " DPUs): shard across more DPUs or shrink the reserve");
    res.allocSecPerBlock = scheme_.allocator
        ? calibratedAllocLatency(*scheme_.allocator, cfg.allocTasklets,
                                 cfg.kvBlockBytes)
        : 0.0;

    const uint64_t per_token = cfg.model.kvBytesPerTokenPerDpu(cfg.numDpus);
    const double blocks_per_token =
        static_cast<double>(per_token) / cfg.kvBlockBytes;
    // Allocations are spread over the DPU's tasklets; one "wave" of
    // concurrent allocations costs one calibrated latency.
    auto allocSeconds = [&](double blocks) {
        if (!scheme_.allocator || blocks <= 0)
            return 0.0;
        const double waves =
            std::ceil(blocks / static_cast<double>(cfg.allocTasklets));
        return waves * res.allocSecPerBlock;
    };

    const std::vector<double> arrivals = arrivalTimes(cfg);

    // The serving clock lives on the unified runtime's host timeline:
    // each lockstep decode step occupies the host for its composed
    // step latency, and idle gaps wait on the next Poisson arrival.
    // (The PIM-side per-block allocation cost feeding each step was
    // calibrated above by running the real allocator on the runtime.)
    core::PimSystemConfig scfg;
    scfg.numDpus = cfg.numDpus;
    scfg.sampleDpus = 1; // analytic steps: no DPU programs launched
    scfg.simThreads = 1;
    core::PimSystem sys(scfg);
    core::CommandQueue clock(sys);
    if (cfg.recorder != nullptr)
        clock.attachRecorder(cfg.recorder);
    // Lockstep keeps its util::Percentile result path (reported
    // figures are sample-exact); a registry additionally gets the
    // histogram/SLO view of the same step latencies.
    telemetry::Registry *met = cfg.metrics;
    telemetry::Histogram *tpot_reg = nullptr;
    if (met != nullptr) {
        clock.attachMetrics(met);
        tpot_reg = &met->histogram("serving.tpot_sec");
        if (cfg.sloTpotSec > 0.0)
            met->slo().declare("serving.tpot", cfg.sloTpotSec);
    }

    std::deque<unsigned> waiting;
    std::vector<ActiveRequest> active;
    unsigned next_arrival = 0;
    unsigned completed = 0;
    uint64_t tokens_out = 0;
    util::Percentile tpot;

    while (completed < cfg.numRequests) {
        const double now = clock.sync();
        // Admit arrivals that happened before `now`.
        while (next_arrival < cfg.numRequests
               && arrivals[next_arrival] <= now) {
            waiting.push_back(next_arrival);
            ++next_arrival;
        }
        double prefill_blocks = 0.0;
        while (!waiting.empty() && active.size() < res.maxBatchLimit) {
            active.push_back({waiting.front(), cfg.promptTokens, 0, 0.0});
            waiting.pop_front();
            // Prefill fills the prompt's KV blocks in one burst.
            prefill_blocks += blocks_per_token * cfg.promptTokens;
        }

        if (active.empty()) {
            // Idle until the next arrival.
            if (next_arrival < cfg.numRequests)
                clock.hostIdleUntil(arrivals[next_arrival],
                                    {.label = "wait:arrival"});
            continue;
        }

        // One decode step: every active request reads its whole per-DPU
        // KV slice (bandwidth-bound attention) and appends one token.
        uint64_t kv_bytes = 0;
        for (const auto &r : active)
            kv_bytes += per_token * r.context;
        const double attn_sec =
            static_cast<double>(kv_bytes) / cfg.mramBandwidth;
        const double alloc_sec =
            allocSeconds(prefill_blocks
                         + blocks_per_token
                             * static_cast<double>(active.size()));
        const double step_sec = cfg.stepOverheadSeconds + cfg.fcStepSeconds
            + attn_sec + alloc_sec;
        if (clock.recorder() != nullptr) {
            clock.hostBusy(step_sec,
                           {.label = "step b"
                                + std::to_string(active.size())});
        } else {
            clock.hostBusy(step_sec);
        }

        res.peakBatchObserved = std::max<unsigned>(
            res.peakBatchObserved, static_cast<unsigned>(active.size()));

        for (auto &r : active) {
            ++r.context;
            ++r.generated;
            ++tokens_out;
            tpot.add(step_sec);
            if (met != nullptr) {
                tpot_reg->add(step_sec);
                met->slo().observe("serving.tpot", step_sec);
            }
        }
        std::erase_if(active, [&](const ActiveRequest &r) {
            if (r.generated >= cfg.outputTokens) {
                ++completed;
                return true;
            }
            return false;
        });
    }

    res.makespanSec = clock.sync();
    res.throughputTokensPerSec =
        static_cast<double>(tokens_out)
        / std::max(res.makespanSec, 1e-9);
    res.tpotP50Ms = tpot.p50() * 1e3;
    res.tpotP95Ms = tpot.p95() * 1e3;
    res.tpotP99Ms = tpot.p99() * 1e3;
    return res;
}

/**
 * The full state of one disaggregated serving pipeline between step()
 * calls: the per-slot prefill heaps, the admission queues, the active
 * batch, and the double-buffered shipping events. One step() is exactly
 * one iteration of the historical runDisaggregated loop, so a
 * standalone run of the task reproduces it number for number.
 */
struct DisaggServingTask::Impl
{
    Impl(const ServingScheme &scheme_in,
         const ServingEngineConfig &ecfg, core::CommandQueue &q,
         const core::DpuSet &partition, core::TenantId tenant_in);

    void step();
    void rebuildParts();
    void onRankFailed(unsigned rank, double failSec);
    void onReplacementGranted(const core::DpuSet &replacement);

    struct Wave
    {
        std::vector<unsigned> reqs;
        core::Event migrated; ///< prompt KV landed on decode ranks
    };

    ServingScheme scheme;
    ServingConfig cfg;
    core::CommandQueue &queue;
    core::PimSystem &sys;
    core::TenantId tenant;
    bool traced;
    /** Prefill / decode split of the owned partition. */
    std::pair<core::DpuSet, core::DpuSet> parts;

    // Derived constants.
    uint64_t perTokenDec = 0;
    uint64_t perTokenPre = 0;
    double blocksPerToken = 0.0;
    uint64_t promptBytesPre = 0;
    unsigned maxPrefillBatch = 1;
    std::vector<double> arrivals;

    // Pipeline state.
    std::vector<PrefillSlot> slots;
    std::deque<unsigned> waiting;
    std::deque<Wave> inflight;
    std::vector<ActiveRequest> active;
    unsigned inflightReqs = 0;
    unsigned nextArrival = 0;
    unsigned completed = 0;
    unsigned stepIdx = 0;
    uint64_t tokensOut = 0;
    uint64_t shippedBytes = 0;
    /**
     * Latency distributions as telemetry histograms: the reported
     * percentiles and the registry-exported ones are one and the same
     * state, and co-tenant tasks merge deterministically.
     */
    telemetry::Histogram tpot;
    telemetry::Histogram ttft;
    /** Registry sinks (all null when cfg.metrics is null). */
    telemetry::Registry *met = nullptr;
    telemetry::Histogram *tpotReg = nullptr;
    telemetry::Histogram *ttftReg = nullptr;
    core::Event shipPrev1 = core::kNoEvent;
    core::Event shipPrev2 = core::kNoEvent;
    double now = 0.0;

    // Fault tolerance (all of it inert — and the pipeline numerically
    // unchanged — unless the queue has a fault::FaultInjector
    // attached). The partition is re-derived from these rank-id lists
    // whenever a rank leaves (death) or joins (replacement grant).
    FaultPolicy policy;
    std::vector<unsigned> prefillRankIds;
    std::vector<unsigned> decodeRankIds;
    /** One rank death awaiting its replacement grant (Recover). */
    struct PendingFail
    {
        unsigned rank;
        double failSec;
        bool wasPrefill;
    };
    std::deque<PendingFail> pendingFails;
    /** Fail times of failures that will never be repaired (Drop). */
    std::vector<double> unrepairedFailSecs;
    unsigned lostReqs = 0;
    unsigned lostStepsN = 0;
    unsigned failures = 0;
    unsigned recoveredCount = 0;
    uint64_t recoveryBytes = 0;
    double mttrSum = 0.0;
    double downtime = 0.0;

    ServingResult res; ///< partition/limit fields filled up front

    double
    allocSeconds(double blocks) const
    {
        if (!scheme.allocator || blocks <= 0)
            return 0.0;
        const double waves = std::ceil(
            blocks / static_cast<double>(cfg.allocTasklets));
        return waves * res.allocSecPerBlock;
    }
};

DisaggServingTask::Impl::Impl(const ServingScheme &scheme_in,
                              const ServingEngineConfig &ecfg,
                              core::CommandQueue &q,
                              const core::DpuSet &partition,
                              core::TenantId tenant_in)
    : scheme(scheme_in), cfg(ecfg.base), queue(q), sys(q.system()),
      tenant(tenant_in), traced(q.recorder() != nullptr),
      parts(partition.partitionRanks(ecfg.prefillRankFraction)),
      policy(ecfg.faultPolicy)
{
    PIM_ASSERT(partition.ranks().size() >= 2,
               "disaggregated serving needs at least two ranks");
    prefillRankIds = parts.first.ranks();
    decodeRankIds = parts.second.ranks();
    const core::DpuSet &prefill_set = parts.first;
    const core::DpuSet &decode_set = parts.second;
    res.prefillRanks =
        static_cast<unsigned>(prefill_set.ranks().size());
    res.decodeRanks = static_cast<unsigned>(decode_set.ranks().size());
    const unsigned prefill_dpus = prefill_set.size();
    const unsigned decode_dpus = decode_set.size();

    res.maxBatchLimit = batchLimit(scheme, cfg, decode_dpus);
    PIM_ASSERT(res.maxBatchLimit >= 1,
               "decode partition too small: zero-request batch limit");
    res.allocSecPerBlock = scheme.allocator
        ? calibratedAllocLatency(*scheme.allocator, cfg.allocTasklets,
                                 cfg.kvBlockBytes)
        : 0.0;

    perTokenDec = cfg.model.kvBytesPerTokenPerDpu(decode_dpus);
    perTokenPre = cfg.model.kvBytesPerTokenPerDpu(prefill_dpus);
    blocksPerToken =
        static_cast<double>(perTokenDec) / cfg.kvBlockBytes;

    // One prefill wave's prompts live transiently in the prefill-rank
    // heaps until the next wave releases them; bound the wave so a
    // whole wave fits.
    const alloc::PimMallocConfig heap_cfg;
    promptBytesPre = perTokenPre * cfg.promptTokens;
    maxPrefillBatch = std::max<unsigned>(
        1,
        static_cast<unsigned>(heap_cfg.heapBytes * 95 / 100
                              / std::max<uint64_t>(promptBytesPre, 1)));

    arrivals = arrivalTimes(cfg);

    if (cfg.metrics != nullptr) {
        met = cfg.metrics;
        tpotReg = &met->histogram("serving.tpot_sec");
        ttftReg = &met->histogram("serving.ttft_sec");
        if (cfg.sloTpotSec > 0.0)
            met->slo().declare("serving.tpot", cfg.sloTpotSec);
        if (cfg.sloTtftSec > 0.0)
            met->slo().declare("serving.ttft", cfg.sloTtftSec);
    }

    // Per-slot prefill state (each slot is touched by exactly one
    // engine worker). Dynamic schemes bring their allocator up in one
    // deployment-time launch before the trace starts, so the (real,
    // possibly large) init cost lands visibly on the prefill ranks at
    // t=0 instead of being dropped as untimed setup inside a wave.
    slots.resize(sys.sampleCount());
    const unsigned tasklets = cfg.allocTasklets;
    if (scheme.allocator) {
        queue.launchProgram(
            prefill_set,
            [this, tasklets](sim::Dpu &dpu, unsigned global) {
                PrefillSlot &st = slots[sys.slotOf(global)];
                core::AllocatorOverrides ov;
                ov.numTasklets = tasklets;
                st.allocator =
                    core::makeAllocator(dpu, *scheme.allocator, ov);
                st.kv = std::make_unique<KvCacheManager>(
                    *st.allocator, cfg.kvBlockBytes);
                dpu.run(1,
                        [&](sim::Tasklet &t) { st.allocator->init(t); });
            },
            {.label = traced ? "alloc init" : "", .tenant = tenant});
    }
}

void
DisaggServingTask::Impl::step()
{
    const core::DpuSet &prefill_set = parts.first;
    const core::DpuSet &decode_set = parts.second;
    const unsigned tasklets = cfg.allocTasklets;

    // Admit arrivals that happened before `now`.
    while (nextArrival < cfg.numRequests
           && arrivals[nextArrival] <= now) {
        waiting.push_back(nextArrival);
        ++nextArrival;
    }

    // Launch a prefill wave on the prefill ranks if there is work
    // and both the decode batch bound and the prefill heap allow.
    const unsigned in_pipe =
        static_cast<unsigned>(active.size()) + inflightReqs;
    if (!waiting.empty() && in_pipe < res.maxBatchLimit) {
        const unsigned room =
            std::min(res.maxBatchLimit - in_pipe, maxPrefillBatch);
        Wave w;
        while (!waiting.empty() && w.reqs.size() < room) {
            w.reqs.push_back(waiting.front());
            waiting.pop_front();
        }
        const unsigned k = static_cast<unsigned>(w.reqs.size());
        // The host dispatches the wave no earlier than its newest
        // member's arrival (the host timeline lags `now` when the
        // decode ranks pace the pipeline, and a prefill must not
        // start before its request exists). Arrivals are sorted,
        // so the last member is the newest.
        queue.hostIdleUntil(arrivals[w.reqs.back()],
                            {.label = "wait:arrival",
                             .tenant = tenant});
        const core::Event pf = queue.launchProgram(
            prefill_set,
            [this, k, tasklets](sim::Dpu &dpu, unsigned global) {
                PrefillSlot &st = slots[sys.slotOf(global)];
                const uint64_t prompt_bytes_pre = promptBytesPre;
                if (st.kv != nullptr) {
                    // Recycle the previous wave's transient prompt
                    // KV (it migrated long ago), then allocate and
                    // fill this wave's blocks with the real
                    // allocator under tasklet concurrency.
                    const unsigned prev = st.prevWaveRequests;
                    dpu.run(tasklets, [&](sim::Tasklet &t) {
                        for (unsigned r = t.id(); r < prev;
                             r += tasklets)
                            st.kv->releaseRequest(t, r);
                        for (unsigned r = t.id(); r < k;
                             r += tasklets) {
                            if (!st.kv->appendBytes(
                                    t, r, prompt_bytes_pre))
                                break; // heap exhausted: keep rest
                        }
                    });
                    st.prevWaveRequests = k;
                } else {
                    // Static: stream the prompts into the
                    // pre-reserved slabs (pure DMA cost).
                    const uint64_t total = prompt_bytes_pre * k;
                    dpu.run(tasklets, [&](sim::Tasklet &t) {
                        constexpr uint64_t chunk = 2048;
                        for (uint64_t off = t.id() * chunk;
                             off < total; off += chunk * tasklets)
                            t.dmaWrite(
                                0, static_cast<uint32_t>(
                                       std::min(chunk, total - off)));
                    });
                }
            },
            {.label = traced ? "prefill b" + std::to_string(k) : "",
             .tenant = tenant});
        // Ship the wave's prompt KV: gather off the prefill ranks,
        // then land it (double-buffered) on the decode ranks.
        const core::Event gather = queue.memcpyAsync(
            prefill_set, promptBytesPre * k,
            core::CopyDirection::PimToHost,
            {.after = pf,
             .label = traced ? "kv gather b" + std::to_string(k) : "",
             .tenant = tenant});
        w.migrated = queue.memcpyBufferedAsync(
            decode_set, perTokenDec * cfg.promptTokens * k,
            core::CopyDirection::HostToPim,
            {.after = gather,
             .label = traced ? "kv migrate b" + std::to_string(k) : "",
             .tenant = tenant});
        shippedBytes += promptBytesPre * k * prefill_set.size()
            + perTokenDec * cfg.promptTokens * k * decode_set.size();
        inflightReqs += k;
        inflight.push_back(std::move(w));
        ++res.prefillWaves;
    }

    // Activate waves whose prompt KV has landed by `now` (their
    // first decodable step starts at or after `now`, so the
    // migration is complete before attention reads it). Under fault
    // injection a wave's migration chain may have failed instead —
    // those waves never activate: Drop loses their requests, Recover
    // re-queues them at the head of the admission queue (they were
    // admitted first) to re-prefill on the repaired partition.
    const bool faults = queue.faultInjector() != nullptr;
    while (!inflight.empty()) {
        if (faults && queue.eventFailed(inflight.front().migrated)) {
            Wave w = std::move(inflight.front());
            inflight.pop_front();
            inflightReqs -= static_cast<unsigned>(w.reqs.size());
            // The failure is *observed* at the chain's completion
            // time, which is never earlier than the fault that caused
            // it — advancing the task clock to it lets the control
            // plane (drainFailedRanks at clockSeconds) see the death
            // before the wave is relaunched onto the dead rank.
            now = std::max(now, queue.eventSeconds(w.migrated));
            if (policy == FaultPolicy::Fatal) {
                PIM_FATAL("prefill wave of ", w.reqs.size(),
                          " requests failed under fault injection "
                          "(FaultPolicy::Fatal)");
            }
            if (policy == FaultPolicy::Drop)
                lostReqs += static_cast<unsigned>(w.reqs.size());
            else
                waiting.insert(waiting.begin(), w.reqs.begin(),
                               w.reqs.end());
            continue;
        }
        if (queue.eventSeconds(inflight.front().migrated) > now)
            break;
        const double ready =
            queue.eventSeconds(inflight.front().migrated);
        for (const unsigned id : inflight.front().reqs)
            active.push_back({id, cfg.promptTokens, 0, ready});
        inflightReqs -=
            static_cast<unsigned>(inflight.front().reqs.size());
        inflight.pop_front();
    }

    if (active.empty()) {
        if (!inflight.empty()) {
            // Wait for the next wave's migration to land.
            const double ready =
                queue.eventSeconds(inflight.front().migrated);
            queue.hostIdleUntil(ready,
                                {.after = inflight.front().migrated,
                                 .label = "wait:prefill",
                                 .tenant = tenant});
            now = std::max(now, ready);
        } else if (nextArrival < cfg.numRequests) {
            queue.hostIdleUntil(arrivals[nextArrival],
                                {.label = "wait:arrival",
                                 .tenant = tenant});
            now = std::max(now, arrivals[nextArrival]);
        }
        return;
    }

    // One pipelined decode step: the host runs the xPU-side FC and
    // step bookkeeping, the decode ranks run bandwidth-bound
    // attention plus this step's KV-block allocations, and the
    // appended KV blocks ship over the bus without stalling the
    // ranks. Consecutive steps overlap across all three resources.
    uint64_t kv_bytes = 0;
    for (const auto &r : active)
        kv_bytes += perTokenDec * r.context;
    const double attn_sec =
        static_cast<double>(kv_bytes) / cfg.mramBandwidth;
    const double alloc_sec = allocSeconds(
        blocksPerToken * static_cast<double>(active.size()));
    const std::string step_tag = traced
        ? " s" + std::to_string(stepIdx) + " b"
            + std::to_string(active.size())
        : std::string();
    queue.hostBusy(cfg.stepOverheadSeconds + cfg.fcStepSeconds,
                   {.label = traced ? "fc" + step_tag : "",
                    .tenant = tenant});
    const core::Event attn = queue.launchTimed(
        decode_set, attn_sec + alloc_sec,
        {.after = shipPrev2,
         .label = traced ? "attn" + step_tag : "",
         .tenant = tenant});
    const uint64_t append_per_dpu =
        perTokenDec * static_cast<uint64_t>(active.size());
    const core::Event ship = queue.memcpyBufferedAsync(
        decode_set, append_per_dpu, core::CopyDirection::HostToPim,
        {.after = attn,
         .label = traced ? "kv append" + step_tag : "",
         .tenant = tenant});
    shippedBytes += append_per_dpu * decode_set.size();
    shipPrev2 = shipPrev1;
    shipPrev1 = ship;
    ++stepIdx;

    const double t_end = queue.eventSeconds(attn);
    if (faults && queue.eventFailed(attn)) {
        // The step produced no tokens: a decode rank died mid-step, a
        // shipped KV append was permanently corrupted (poisoning this
        // attention through its .after chain), or the launch timed
        // out. Nothing commits — under Recover the batch stays active
        // and the eventually-successful retry's TPOT spans the gap
        // (the SLO sees the stall); under Drop the batch's KV is
        // untrusted and its requests are shed. Either way the
        // double-buffer chain restarts from scratch so one failed
        // ship cannot poison every later step.
        if (policy == FaultPolicy::Fatal) {
            PIM_FATAL("decode step ", stepIdx - 1, " (batch ",
                      active.size(), ") failed under fault injection "
                      "(FaultPolicy::Fatal)");
        }
        lostStepsN += static_cast<unsigned>(active.size());
        if (policy == FaultPolicy::Drop) {
            lostReqs += static_cast<unsigned>(active.size());
            active.clear();
        }
        shipPrev1 = core::kNoEvent;
        shipPrev2 = core::kNoEvent;
        now = std::max(now, t_end);
        return;
    }
    res.peakBatchObserved = std::max<unsigned>(
        res.peakBatchObserved, static_cast<unsigned>(active.size()));
    for (auto &r : active) {
        ++r.context;
        ++r.generated;
        ++tokensOut;
        const double step_lat = t_end - r.lastTokenSec;
        tpot.add(step_lat);
        if (met != nullptr) {
            tpotReg->add(step_lat);
            met->slo().observe("serving.tpot", step_lat);
        }
        if (r.generated == 1) {
            const double first_lat = t_end - arrivals[r.id];
            ttft.add(first_lat);
            if (met != nullptr) {
                ttftReg->add(first_lat);
                met->slo().observe("serving.ttft", first_lat);
            }
        }
        r.lastTokenSec = t_end;
    }
    std::erase_if(active, [&](const ActiveRequest &r) {
        if (r.generated >= cfg.outputTokens) {
            ++completed;
            return true;
        }
        return false;
    });
    now = std::max(now, t_end);
}

void
DisaggServingTask::Impl::rebuildParts()
{
    PIM_ASSERT(!prefillRankIds.empty() && !decodeRankIds.empty(),
               "serving partition lost a whole side");
    parts = {sys.ranks(prefillRankIds), sys.ranks(decodeRankIds)};
    const unsigned prefill_dpus = parts.first.size();
    const unsigned decode_dpus = parts.second.size();
    res.prefillRanks =
        static_cast<unsigned>(parts.first.ranks().size());
    res.decodeRanks = static_cast<unsigned>(parts.second.ranks().size());
    perTokenDec = cfg.model.kvBytesPerTokenPerDpu(decode_dpus);
    perTokenPre = cfg.model.kvBytesPerTokenPerDpu(prefill_dpus);
    blocksPerToken =
        static_cast<double>(perTokenDec) / cfg.kvBlockBytes;
    const alloc::PimMallocConfig heap_cfg;
    promptBytesPre = perTokenPre * cfg.promptTokens;
    maxPrefillBatch = std::max<unsigned>(
        1,
        static_cast<unsigned>(heap_cfg.heapBytes * 95 / 100
                              / std::max<uint64_t>(promptBytesPre, 1)));
    res.maxBatchLimit = batchLimit(scheme, cfg, decode_dpus);
    PIM_ASSERT(res.maxBatchLimit >= 1,
               "decode partition too small after rank loss: "
               "zero-request batch limit");
}

void
DisaggServingTask::Impl::onRankFailed(unsigned rank, double failSec)
{
    const bool was_prefill =
        std::find(prefillRankIds.begin(), prefillRankIds.end(), rank)
        != prefillRankIds.end();
    const bool was_decode =
        std::find(decodeRankIds.begin(), decodeRankIds.end(), rank)
        != decodeRankIds.end();
    PIM_ASSERT(was_prefill || was_decode, "rank ", rank,
               " is not part of this serving partition");
    if (policy == FaultPolicy::Fatal) {
        PIM_FATAL("rank ", rank, " failed at t=", failSec,
                  "s (FaultPolicy::Fatal)");
    }
    ++failures;
    std::erase(prefillRankIds, rank);
    std::erase(decodeRankIds, rank);

    if (policy == FaultPolicy::Recover) {
        // Pause (waitingReplacement) until the control plane grants a
        // replacement; the affected waves/steps surface as failed
        // events and re-queue through the step() paths above.
        pendingFails.push_back({rank, failSec, was_prefill});
        return;
    }

    // Drop: no replacement is coming. The dead rank held a shard of
    // every active request's KV (decode) or of the in-flight prompt
    // KV (prefill), so those requests are shed, and the partition
    // shrinks onto the survivors. If a whole side died there is no
    // pipeline left — everything unfinished is lost.
    unrepairedFailSecs.push_back(failSec);
    if (was_decode) {
        lostReqs += static_cast<unsigned>(active.size());
        active.clear();
    }
    for (const auto &w : inflight)
        lostReqs += static_cast<unsigned>(w.reqs.size());
    inflight.clear();
    inflightReqs = 0;
    shipPrev1 = core::kNoEvent;
    shipPrev2 = core::kNoEvent;
    if (prefillRankIds.empty() || decodeRankIds.empty()) {
        lostReqs += static_cast<unsigned>(waiting.size());
        lostReqs += cfg.numRequests - nextArrival;
        waiting.clear();
        nextArrival = cfg.numRequests;
        return;
    }
    rebuildParts();
}

void
DisaggServingTask::Impl::onReplacementGranted(
    const core::DpuSet &replacement)
{
    PIM_ASSERT(!pendingFails.empty(),
               "replacement granted with no outstanding rank failure");
    const PendingFail fail = pendingFails.front();
    pendingFails.pop_front();
    ++recoveredCount;

    std::vector<unsigned> &side =
        fail.wasPrefill ? prefillRankIds : decodeRankIds;
    for (const unsigned r : replacement.ranks())
        side.push_back(r);
    rebuildParts();

    // Repair starts no earlier than the failure was observed: the
    // replacement's lanes are idle (a fresh rank back-fills to t=0
    // otherwise), so pin the tenant's host lane first.
    queue.hostIdleUntil(std::max(now, fail.failSec),
                        {.label = traced ? "recover:wait" : "",
                         .tenant = tenant});

    core::Event landed = core::kNoEvent;
    const unsigned tasklets = cfg.allocTasklets;
    if (fail.wasPrefill) {
        // A prefill rank holds only transient prompt KV (re-created by
        // the re-queued waves), so recovery is bringing the fresh
        // rank's allocator state up — the same deployment-time launch
        // the constructor issues.
        if (scheme.allocator) {
            landed = queue.launchProgram(
                replacement,
                [this, tasklets](sim::Dpu &dpu, unsigned global) {
                    PrefillSlot &st = slots[sys.slotOf(global)];
                    core::AllocatorOverrides ov;
                    ov.numTasklets = tasklets;
                    st.allocator =
                        core::makeAllocator(dpu, *scheme.allocator, ov);
                    st.kv = std::make_unique<KvCacheManager>(
                        *st.allocator, cfg.kvBlockBytes);
                    st.prevWaveRequests = 0;
                    dpu.run(1, [&](sim::Tasklet &t) {
                        st.allocator->init(t);
                    });
                },
                {.label = traced ? "recover:alloc init" : "",
                 .tenant = tenant});
        }
    } else {
        // A decode rank held one shard of every resident context: the
        // active batch's full contexts plus the prompts of waves whose
        // migration already landed (waves that failed instead
        // re-prefill from scratch, so their KV is not re-shipped
        // twice). Re-ship that shard onto the replacement through the
        // same double-buffered scatter path the pipeline uses, and
        // restart the ship chain from it so the next attention waits
        // for the restored KV.
        uint64_t ctx_tokens = 0;
        for (const auto &r : active)
            ctx_tokens += r.context;
        for (const auto &w : inflight) {
            if (!queue.eventFailed(w.migrated)) {
                ctx_tokens += static_cast<uint64_t>(w.reqs.size())
                    * cfg.promptTokens;
            }
        }
        const uint64_t bytes_per_dpu = perTokenDec * ctx_tokens;
        if (bytes_per_dpu > 0) {
            landed = queue.memcpyBufferedAsync(
                replacement, bytes_per_dpu,
                core::CopyDirection::HostToPim,
                {.label = traced ? "recover:kv reship" : "",
                 .tenant = tenant});
            recoveryBytes += bytes_per_dpu * replacement.size();
        }
        shipPrev1 = landed;
        shipPrev2 = core::kNoEvent;
    }

    const double repaired = std::max(
        landed != core::kNoEvent ? queue.eventSeconds(landed)
                                 : std::max(now, fail.failSec),
        fail.failSec);
    mttrSum += repaired - fail.failSec;
    downtime += repaired - fail.failSec;
}

DisaggServingTask::DisaggServingTask(const ServingScheme &scheme,
                                     const ServingEngineConfig &cfg,
                                     core::CommandQueue &queue,
                                     const core::DpuSet &partition,
                                     core::TenantId tenant)
    : impl_(std::make_unique<Impl>(scheme, cfg, queue, partition,
                                   tenant))
{
}

DisaggServingTask::~DisaggServingTask() = default;

bool
DisaggServingTask::done() const
{
    return impl_->completed + impl_->lostReqs
        >= impl_->cfg.numRequests;
}

double
DisaggServingTask::clockSeconds() const
{
    return impl_->now;
}

void
DisaggServingTask::step()
{
    PIM_ASSERT(!done(), "step() after the serving trace completed");
    PIM_ASSERT(impl_->pendingFails.empty(),
               "step() while waiting for a replacement rank");
    impl_->step();
}

void
DisaggServingTask::onRankFailed(unsigned rank, double failSec)
{
    impl_->onRankFailed(rank, failSec);
}

void
DisaggServingTask::onReplacementGranted(const core::DpuSet &replacement)
{
    impl_->onReplacementGranted(replacement);
}

bool
DisaggServingTask::waitingReplacement() const
{
    return !impl_->pendingFails.empty();
}

ServingResult
DisaggServingTask::result() const
{
    PIM_ASSERT(done(), "result() before the serving trace completed");
    ServingResult res = impl_->res;
    res.makespanSec = impl_->now;
    res.throughputTokensPerSec =
        static_cast<double>(impl_->tokensOut)
        / std::max(res.makespanSec, 1e-9);
    res.tpotP50Ms = impl_->tpot.p50() * 1e3;
    res.tpotP95Ms = impl_->tpot.p95() * 1e3;
    res.tpotP99Ms = impl_->tpot.p99() * 1e3;
    res.ttftP50Ms = impl_->ttft.p50() * 1e3;
    res.ttftP95Ms = impl_->ttft.p95() * 1e3;
    res.ttftP99Ms = impl_->ttft.p99() * 1e3;
    res.kvShippedBytes = impl_->shippedBytes;
    res.completedRequests = impl_->completed;
    res.lostRequests = impl_->lostReqs;
    res.lostSteps = impl_->lostStepsN;
    res.rankFailures = impl_->failures;
    res.recoveryBytes = impl_->recoveryBytes;
    res.mttrMeanSec = impl_->recoveredCount > 0
        ? impl_->mttrSum / impl_->recoveredCount
        : 0.0;
    double down = impl_->downtime;
    for (const double fail_sec : impl_->unrepairedFailSecs)
        down += std::max(0.0, impl_->now - fail_sec);
    for (const auto &f : impl_->pendingFails)
        down += std::max(0.0, impl_->now - f.failSec);
    res.availability = res.makespanSec > 0.0
        ? std::clamp(1.0 - down / res.makespanSec, 0.0, 1.0)
        : 1.0;
    return res;
}

ServingResult
ServingEngine::runDisaggregated()
{
    const ServingConfig &cfg = cfg_.base;

    // One representative DPU per rank: prefill launches must find a
    // materialized member in every prefill rank.
    core::PimSystemConfig scfg;
    scfg.numDpus = cfg.numDpus;
    scfg.samplePerRank = true;
    scfg.simThreads = cfg_.simThreads;
    core::PimSystem sys(scfg);
    PIM_ASSERT(sys.numRanks() >= 2,
               "disaggregated serving needs at least two ranks");
    core::CommandQueue queue(sys);
    if (cfg.recorder != nullptr)
        queue.attachRecorder(cfg.recorder);
    if (cfg.metrics != nullptr)
        queue.attachMetrics(cfg.metrics);

    // Fault injection (opt-in): attach the deterministic plan to the
    // queue and, when rank deaths are in play, arbitrate the ranks
    // through a RankScheduler holding spare ranks back — spares are
    // held for every policy so a Recover run and its Drop baseline
    // serve on identically sized partitions.
    std::unique_ptr<fault::FaultInjector> inj;
    std::unique_ptr<core::RankScheduler> sched;
    std::unique_ptr<DisaggServingTask> task;
    if (cfg_.faultSpec.enabled()) {
        inj = std::make_unique<fault::FaultInjector>(fault::FaultPlan(
            cfg_.faultSpec, cfg_.faultSeed, sys.numRanks()));
        queue.attachFaultInjector(inj.get());
    }
    if (inj != nullptr && cfg_.faultSpec.rankMtbfSec > 0.0) {
        sched = std::make_unique<core::RankScheduler>(sys);
        if (cfg.metrics != nullptr)
            sched->attachMetrics(cfg.metrics);
        const unsigned spare = std::min(
            cfg_.spareRanks, sys.numRanks() > 2 ? sys.numRanks() - 2
                                                : 0u);
        task = std::make_unique<DisaggServingTask>(
            scheme_, cfg_, queue,
            sched->acquireRanks(sys.numRanks() - spare, "serving"));
        sched->onRevoke("serving", [&](unsigned rank) {
            task->onRankFailed(rank, inj->rankFailSeconds(rank));
            if (cfg_.faultPolicy == FaultPolicy::Recover) {
                sched->requestRanks(1, "serving",
                                    [&](core::DpuSet replacement) {
                    task->onReplacementGranted(std::move(replacement));
                });
            }
        });
    } else {
        task = std::make_unique<DisaggServingTask>(scheme_, cfg_,
                                                   queue, sys.all());
    }

    while (!task->done()) {
        task->step();
        if (sched != nullptr) {
            // Quarantine ranks whose scheduled death the pipeline has
            // now reached; the revoke callback above notifies the task
            // and (Recover) requests the replacement, which the
            // scheduler grants from the spare pool before returning.
            for (const fault::FaultEvent &ev :
                 inj->drainFailedRanks(task->clockSeconds()))
                sched->quarantine(ev.rank);
            if (task->waitingReplacement()) {
                PIM_FATAL("rank failed with no spare replacement left "
                          "(", sched->freeRankCount(), " free): raise "
                          "ServingEngineConfig::spareRanks or shorten "
                          "the trace");
            }
        }
    }

    if (inj != nullptr && cfg.metrics != nullptr)
        inj->exportMetrics(*cfg.metrics);

    // Standalone: the queue is exclusively ours, so the joined-queue
    // makespan, the queue's transfer counter, and the hidden-work sum
    // are all this run's own (a co-tenant run reads task.result()
    // as-is instead and gets tenant-local numbers).
    ServingResult res = task->result();
    res.makespanSec = queue.sync();
    res.throughputTokensPerSec =
        static_cast<double>(task->impl_->tokensOut)
        / std::max(res.makespanSec, 1e-9);
    res.kvShippedBytes = queue.transferredBytes();
    res.overlapSeconds = std::max(
        0.0,
        queue.launchWorkSeconds() + queue.copyWorkSeconds()
            + queue.hostWorkSeconds() - res.makespanSec);
    return res;
}

} // namespace pim::workloads::llm
