#include "workloads/llm/llm_config.hh"

#include <algorithm>
#include <cmath>

namespace pim::workloads::llm {

RequestLengths
sampleRequest(const RequestLengthConfig &cfg, util::Rng &rng)
{
    auto draw = [&](double mu, double sigma) {
        const double x = rng.logNormal(mu, sigma);
        return static_cast<unsigned>(std::max(1.0, std::round(x)));
    };
    RequestLengths r;
    r.promptTokens = draw(cfg.promptMu, cfg.promptSigma);
    r.outputTokens = draw(cfg.outputMu, cfg.outputSigma);
    // Clamp to the serving window, preserving at least one output token.
    if (r.promptTokens >= cfg.maxSeqLen)
        r.promptTokens = cfg.maxSeqLen - 1;
    r.outputTokens =
        std::min<unsigned>(r.outputTokens, cfg.maxSeqLen - r.promptTokens);
    if (r.outputTokens == 0)
        r.outputTokens = 1;
    return r;
}

} // namespace pim::workloads::llm
