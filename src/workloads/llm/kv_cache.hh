/**
 * @file
 * Per-DPU KV-cache management for PIM-offloaded attention. Following the
 * paper's kernel design (Section V), each request's per-DPU KV slice
 * grows in fixed 512 B blocks allocated with pimMalloc() whenever the
 * existing space is exhausted; releasing a request frees all its blocks.
 * Also provides the static-reservation baseline used by PAISE-style
 * serving (one worst-case slab per request slot).
 */

#ifndef PIM_WORKLOADS_LLM_KV_CACHE_HH
#define PIM_WORKLOADS_LLM_KV_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "alloc/allocator.hh"
#include "sim/tasklet.hh"

namespace pim::workloads::llm {

/** Dynamic (pimMalloc-backed) KV cache for one DPU. */
class KvCacheManager
{
  public:
    /**
     * @param allocator  the allocator under evaluation.
     * @param block_bytes growth granularity (paper: 512 B).
     */
    explicit KvCacheManager(alloc::Allocator &allocator,
                            uint32_t block_bytes = 512);

    /**
     * Append @p bytes of KV state for request @p req (one or more
     * tokens). Allocates new blocks as needed.
     * @return false if the allocator ran out of heap (the request's
     *         existing blocks stay intact).
     */
    bool appendBytes(sim::Tasklet &t, unsigned req, uint64_t bytes);

    /** Free every block of request @p req. */
    void releaseRequest(sim::Tasklet &t, unsigned req);

    /** Blocks currently held by request @p req. */
    size_t blockCount(unsigned req) const;

    /** Total KV bytes stored (exact, before block rounding). */
    uint64_t bytesStored() const { return bytesStored_; }

    /** Total blocks across all requests. */
    uint64_t totalBlocks() const { return totalBlocks_; }

    /** Active request count. */
    size_t activeRequests() const { return requests_.size(); }

  private:
    struct Request
    {
        std::vector<sim::MramAddr> blocks;
        uint64_t bytesUsed = 0; ///< exact bytes, grows monotonically
    };

    alloc::Allocator &allocator_;
    uint32_t blockBytes_;
    std::unordered_map<unsigned, Request> requests_;
    uint64_t bytesStored_ = 0;
    uint64_t totalBlocks_ = 0;
};

/** Result of the Fig 4(b) maximum-batch-size experiment. */
struct BatchCapacityResult
{
    unsigned staticMaxBatch = 0;  ///< PAISE-style worst-case reservation
    unsigned dynamicMaxBatch = 0; ///< pimMalloc-backed growth
    uint64_t heapBytes = 0;
    uint64_t staticReserveBytesPerRequest = 0;
    double meanActualBytesPerRequest = 0.0;
};

/**
 * Measure the maximum concurrent batch under static vs dynamic KV
 * allocation (Fig 4(b)): requests with ShareGPT-like lengths are
 * admitted one at a time until the per-DPU heap is exhausted. The
 * dynamic path runs the real allocator on a simulated DPU.
 */
BatchCapacityResult
measureBatchCapacity(const struct LlmModelConfig &model,
                     const struct RequestLengthConfig &lengths,
                     unsigned num_dpus, uint64_t seed);

} // namespace pim::workloads::llm

#endif // PIM_WORKLOADS_LLM_KV_CACHE_HH
