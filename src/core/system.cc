#include "core/system.hh"

#include "core/parallel_engine.hh"

namespace pim::core {

MultiDpuResult
simulateDpus(unsigned num_dpus, const sim::DpuConfig &cfg,
             const std::function<void(sim::Dpu &, unsigned)> &program,
             unsigned sample, unsigned threads)
{
    return ParallelDpuEngine(threads).simulate(num_dpus, cfg, program,
                                               sample);
}

} // namespace pim::core
