#include "core/system.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pim::core {

MultiDpuResult
simulateDpus(unsigned num_dpus, const sim::DpuConfig &cfg,
             const std::function<void(sim::Dpu &, unsigned)> &program,
             unsigned sample)
{
    PIM_ASSERT(num_dpus > 0, "need at least one DPU");
    const unsigned simulated =
        sample == 0 ? num_dpus : std::min(sample, num_dpus);

    MultiDpuResult out;
    out.numDpus = num_dpus;
    out.simulatedDpus = simulated;

    double sum_seconds = 0.0;
    for (unsigned i = 0; i < simulated; ++i) {
        // Spread the simulated sample across the global index space so
        // index-dependent sharding is representative.
        const unsigned global = simulated == num_dpus
            ? i : i * (num_dpus / simulated);
        sim::Dpu dpu(cfg);
        program(dpu, global);
        out.maxCycles = std::max(out.maxCycles, dpu.lastElapsedCycles());
        sum_seconds += dpu.lastElapsedSeconds();
        out.breakdown.merge(dpu.lastBreakdown());
        out.traffic.merge(dpu.traffic());
    }
    out.maxSeconds = cfg.cyclesToSeconds(out.maxCycles);
    out.meanSeconds = sum_seconds / static_cast<double>(simulated);

    // Scale traffic from the sample to the full system.
    if (simulated < num_dpus) {
        const double scale = static_cast<double>(num_dpus)
            / static_cast<double>(simulated);
        auto scaleUp = [scale](uint64_t v) {
            return static_cast<uint64_t>(static_cast<double>(v) * scale);
        };
        out.traffic.dataReadBytes = scaleUp(out.traffic.dataReadBytes);
        out.traffic.dataWriteBytes = scaleUp(out.traffic.dataWriteBytes);
        out.traffic.metadataReadBytes =
            scaleUp(out.traffic.metadataReadBytes);
        out.traffic.metadataWriteBytes =
            scaleUp(out.traffic.metadataWriteBytes);
        out.traffic.dmaTransfers = scaleUp(out.traffic.dmaTransfers);
    }
    return out;
}

} // namespace pim::core
