#include "core/system.hh"

#include <algorithm>

#include "core/command_queue.hh"
#include "core/pim_system.hh"

namespace pim::core {

MultiDpuResult
simulateDpus(unsigned num_dpus, const sim::DpuConfig &cfg,
             const std::function<void(sim::Dpu &, unsigned)> &program,
             unsigned sample, unsigned threads)
{
    // Synchronous facade over the command-queue runtime: one program
    // launch on the whole system, then a sequential slot-order fold so
    // the reduction — including the floating-point sums — is
    // bit-identical for any worker-thread count.
    PimSystemConfig scfg;
    scfg.numDpus = num_dpus;
    scfg.sampleDpus = sample;
    scfg.dpuCfg = cfg;
    scfg.simThreads = threads;
    PimSystem sys(scfg);
    CommandQueue queue(sys);
    // The reduction below reads only scalar outcomes, so each worker
    // returns its DPU's memory pages as soon as the program finishes —
    // peak RSS tracks the in-flight workers, not the whole system,
    // exactly like the pre-queue transient-Dpu loop.
    queue.launchProgram(sys.all(),
                        [&program](sim::Dpu &dpu, unsigned global) {
                            program(dpu, global);
                            dpu.reclaimMemory();
                        });
    queue.sync();

    const unsigned simulated = sys.sampleCount();
    MultiDpuResult out;
    out.numDpus = num_dpus;
    out.simulatedDpus = simulated;

    double sum_seconds = 0.0;
    for (unsigned slot = 0; slot < simulated; ++slot) {
        sim::Dpu &dpu = sys.dpu(slot);
        out.maxCycles = std::max(out.maxCycles,
                                 dpu.lastElapsedCycles());
        sum_seconds += dpu.lastElapsedSeconds();
        out.breakdown.merge(dpu.lastBreakdown());
        out.traffic.merge(dpu.traffic());
    }
    out.maxSeconds = cfg.cyclesToSeconds(out.maxCycles);
    out.meanSeconds = sum_seconds / static_cast<double>(simulated);

    // Scale traffic from the sample to the full system.
    if (simulated < num_dpus) {
        const double scale = static_cast<double>(num_dpus)
            / static_cast<double>(simulated);
        auto scaleUp = [scale](uint64_t v) {
            return static_cast<uint64_t>(static_cast<double>(v) * scale);
        };
        out.traffic.dataReadBytes = scaleUp(out.traffic.dataReadBytes);
        out.traffic.dataWriteBytes = scaleUp(out.traffic.dataWriteBytes);
        out.traffic.metadataReadBytes =
            scaleUp(out.traffic.metadataReadBytes);
        out.traffic.metadataWriteBytes =
            scaleUp(out.traffic.metadataWriteBytes);
        out.traffic.dmaTransfers = scaleUp(out.traffic.dmaTransfers);
    }
    return out;
}

} // namespace pim::core
