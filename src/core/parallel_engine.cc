#include "core/parallel_engine.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.hh"

namespace pim::core {

unsigned
resolveSimThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("PIM_SIM_THREADS")) {
        // An empty value counts as unset; anything else must be a
        // positive integer — a typo silently falling back to the
        // hardware thread count would quietly change every experiment.
        if (*env != '\0') {
            char *end = nullptr;
            const long v = std::strtol(env, &end, 10);
            if (end == env || *end != '\0' || v <= 0)
                PIM_FATAL("PIM_SIM_THREADS must be a positive integer, "
                          "got '", env, "'");
            return static_cast<unsigned>(v);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ParallelDpuEngine::ParallelDpuEngine(unsigned num_threads)
    : threads_(resolveSimThreads(num_threads))
{
}

void
ParallelDpuEngine::forEach(size_t n,
                           const std::function<void(size_t)> &fn) const
{
    if (n == 0)
        return;

    if (threads_ <= 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Grab granularity: coarse enough to amortize the atomic fetch when
    // indices are cheap (thousands of small DPU launches), fine enough
    // that a handful of expensive indices (heavy workload shards) still
    // spread across all workers.
    const size_t chunk = std::clamp<size_t>(
        n / (static_cast<size_t>(threads_) * 8), 1, kMaxGrabChunk);
    const size_t num_chunks = (n + chunk - 1) / chunk;
    const size_t workers = std::min<size_t>(threads_, num_chunks);

    std::atomic<size_t> next_chunk{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&]() {
        for (;;) {
            const size_t c =
                next_chunk.fetch_add(1, std::memory_order_relaxed);
            if (c >= num_chunks)
                return;
            const size_t begin = c * chunk;
            const size_t end = std::min(begin + chunk, n);
            try {
                for (size_t i = begin; i < end; ++i)
                    fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                // Drain remaining chunks without running them so the
                // other workers exit promptly.
                next_chunk.store(num_chunks, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace pim::core
