#include "core/parallel_engine.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/host_placement.hh"
#include "util/logging.hh"

namespace pim::core {

namespace {

/** Set while the current thread is a pool worker running a job; nested
 *  forEach() calls from workload code then run inline instead of
 *  re-entering the dispatcher (which would deadlock on callMutex_). */
thread_local bool tl_in_pool_worker = false;

} // namespace

unsigned
resolveSimThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("PIM_SIM_THREADS")) {
        // An empty value counts as unset; anything else must be a
        // positive integer — a typo silently falling back to the
        // hardware thread count would quietly change every experiment.
        if (*env != '\0') {
            char *end = nullptr;
            const long v = std::strtol(env, &end, 10);
            if (end == env || *end != '\0' || v <= 0)
                PIM_FATAL("PIM_SIM_THREADS must be a positive integer, "
                          "got '", env, "'");
            return static_cast<unsigned>(v);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

bool
ParallelDpuEngine::affinityFromEnv(const char *value)
{
    if (value == nullptr || *value == '\0'
        || std::strcmp(value, "0") == 0)
        return false;
    if (std::strcmp(value, "1") == 0)
        return true;
    PIM_FATAL("PIM_SIM_AFFINITY must be \"0\" or \"1\", got '", value,
              "'");
}

ParallelDpuEngine::ParallelDpuEngine(unsigned num_threads)
    : threads_(resolveSimThreads(num_threads)),
      affinity_(affinityFromEnv(std::getenv("PIM_SIM_AFFINITY")))
{
}

ParallelDpuEngine::~ParallelDpuEngine()
{
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        stopping_ = true;
    }
    wakeCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

unsigned
ParallelDpuEngine::liveWorkers() const
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    return static_cast<unsigned>(workers_.size());
}

unsigned
ParallelDpuEngine::ownerOfIndex(size_t i, size_t n) const
{
    // Inverse of the static slicing in runSlice(): worker w owns
    // [w*n/W, (w+1)*n/W).
    const size_t workers = std::min<size_t>(threads_, n);
    if (workers <= 1 || n == 0)
        return 0;
    const size_t w = (i * workers) / n;
    // Integer rounding can land one off; correct against the exact
    // slice bounds.
    for (size_t c = w > 0 ? w - 1 : 0; c < workers; ++c) {
        if (i >= (c * n) / workers && i < ((c + 1) * n) / workers)
            return static_cast<unsigned>(c);
    }
    return static_cast<unsigned>(workers - 1);
}

void
ParallelDpuEngine::ensureWorkers(size_t count) const
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    while (workers_.size() < count) {
        const unsigned idx = static_cast<unsigned>(workers_.size());
        workers_.emplace_back([this, idx]() { workerMain(idx); });
    }
}

void
ParallelDpuEngine::runSlice(unsigned worker_idx) const
{
    const std::function<void(size_t)> &fn = *job_.fn;
    if (job_.staticSlices) {
        // Pinned placement: fixed contiguous slice per worker so the
        // index -> CPU mapping is stable across calls (NUMA locality).
        const size_t begin = (worker_idx * job_.n) / job_.participants;
        const size_t end =
            ((worker_idx + 1) * job_.n) / job_.participants;
        try {
            for (size_t i = begin; i < end; ++i)
                fn(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(poolMutex_);
            if (!job_.firstError)
                job_.firstError = std::current_exception();
        }
        return;
    }
    for (;;) {
        const size_t c =
            job_.nextChunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= job_.numChunks)
            return;
        const size_t begin = c * job_.chunk;
        const size_t end = std::min(begin + job_.chunk, job_.n);
        try {
            for (size_t i = begin; i < end; ++i)
                fn(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(poolMutex_);
            if (!job_.firstError)
                job_.firstError = std::current_exception();
            // Drain remaining chunks without running them so the other
            // workers finish the job promptly.
            job_.nextChunk.store(job_.numChunks,
                                 std::memory_order_relaxed);
            return;
        }
    }
}

void
ParallelDpuEngine::workerMain(unsigned worker_idx) const
{
    tl_in_pool_worker = true;
    if (affinity_)
        (void)util::pinCurrentThreadToCpu(worker_idx);

    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(poolMutex_);
    for (;;) {
        wakeCv_.wait(lock, [&]() {
            return stopping_ || generation_ != seen;
        });
        if (stopping_)
            return;
        seen = generation_;
        if (worker_idx >= job_.participants)
            continue;
        lock.unlock();
        runSlice(worker_idx);
        lock.lock();
        if (++job_.workersDone == job_.participants)
            doneCv_.notify_all();
    }
}

void
ParallelDpuEngine::startJob(size_t n,
                            const std::function<void(size_t)> &fn) const
{
    // Grab granularity: coarse enough to amortize the atomic fetch when
    // indices are cheap (thousands of small DPU launches), fine enough
    // that a handful of expensive indices (heavy workload shards) still
    // spread across all workers.
    const size_t chunk = std::clamp<size_t>(
        n / (static_cast<size_t>(threads_) * 8), 1, kMaxGrabChunk);
    const size_t num_chunks = (n + chunk - 1) / chunk;
    const size_t participants =
        std::min<size_t>(threads_, affinity_ ? n : num_chunks);

    ensureWorkers(participants);
    {
        std::lock_guard<std::mutex> lock(poolMutex_);
        job_.fn = &fn;
        job_.n = n;
        job_.chunk = chunk;
        job_.numChunks = num_chunks;
        job_.participants = participants;
        job_.nextChunk.store(0, std::memory_order_relaxed);
        job_.workersDone = 0;
        job_.firstError = nullptr;
        job_.staticSlices = affinity_;
        ++generation_;
    }
    wakeCv_.notify_all();
}

std::exception_ptr
ParallelDpuEngine::joinJob() const
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(poolMutex_);
        doneCv_.wait(lock, [&]() {
            return job_.workersDone == job_.participants;
        });
        error = job_.firstError;
        job_.fn = nullptr;
    }
    return error;
}

void
ParallelDpuEngine::forEach(size_t n,
                           const std::function<void(size_t)> &fn) const
{
    if (n == 0)
        return;

    if (tl_in_pool_worker || threads_ <= 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // One dispatched job at a time; concurrent top-level callers queue
    // here (workload code never calls this concurrently, but tests do).
    std::lock_guard<std::mutex> call(callMutex_);
    startJob(n, fn);
    if (std::exception_ptr error = joinJob())
        std::rethrow_exception(error);
}

bool
ParallelDpuEngine::canDispatch(size_t n) const
{
    return n > 0 && threads_ > 1 && !tl_in_pool_worker;
}

void
ParallelDpuEngine::dispatch(size_t n,
                            const std::function<void(size_t)> &fn) const
{
    PIM_ASSERT(canDispatch(n),
               "dispatch() requires canDispatch(): a pool (threads > 1) "
               "and a non-worker caller");
    // Hold the top-level-caller lock across the dispatch..wait window so
    // a concurrent forEach() cannot clobber the in-flight job.
    callMutex_.lock();
    PIM_ASSERT(!dispatchActive_, "dispatch() without waitDispatch()");
    dispatchActive_ = true;
    startJob(n, fn);
}

void
ParallelDpuEngine::waitDispatch() const
{
    PIM_ASSERT(dispatchActive_, "waitDispatch() without dispatch()");
    std::exception_ptr error = joinJob();
    dispatchActive_ = false;
    callMutex_.unlock();
    if (error)
        std::rethrow_exception(error);
}

bool
ParallelDpuEngine::dispatchDone() const
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    return job_.workersDone == job_.participants;
}

} // namespace pim::core
