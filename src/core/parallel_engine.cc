#include "core/parallel_engine.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.hh"

namespace pim::core {

unsigned
resolveSimThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("PIM_SIM_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ParallelDpuEngine::ParallelDpuEngine(unsigned num_threads)
    : threads_(resolveSimThreads(num_threads))
{
}

void
ParallelDpuEngine::forEach(size_t n,
                           const std::function<void(size_t)> &fn) const
{
    if (n == 0)
        return;

    if (threads_ <= 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Grab granularity: coarse enough to amortize the atomic fetch when
    // indices are cheap (thousands of small DPU launches), fine enough
    // that a handful of expensive indices (heavy workload shards) still
    // spread across all workers.
    const size_t chunk = std::clamp<size_t>(
        n / (static_cast<size_t>(threads_) * 8), 1, kMaxGrabChunk);
    const size_t num_chunks = (n + chunk - 1) / chunk;
    const size_t workers = std::min<size_t>(threads_, num_chunks);

    std::atomic<size_t> next_chunk{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&]() {
        for (;;) {
            const size_t c =
                next_chunk.fetch_add(1, std::memory_order_relaxed);
            if (c >= num_chunks)
                return;
            const size_t begin = c * chunk;
            const size_t end = std::min(begin + chunk, n);
            try {
                for (size_t i = begin; i < end; ++i)
                    fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                // Drain remaining chunks without running them so the
                // other workers exit promptly.
                next_chunk.store(num_chunks, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

namespace {

/** Per-DPU reduction inputs, filled into an index-addressed slot. */
struct DpuOutcome
{
    uint64_t cycles = 0;
    double seconds = 0.0;
    sim::CycleBreakdown breakdown{};
    sim::TrafficStats traffic{};
};

} // namespace

MultiDpuResult
ParallelDpuEngine::simulate(
    unsigned num_dpus, const sim::DpuConfig &cfg,
    const std::function<void(sim::Dpu &, unsigned)> &program,
    unsigned sample) const
{
    PIM_ASSERT(num_dpus > 0, "need at least one DPU");
    const unsigned simulated =
        sample == 0 ? num_dpus : std::min(sample, num_dpus);

    MultiDpuResult out;
    out.numDpus = num_dpus;
    out.simulatedDpus = simulated;

    // Workers write only their own DPU's slot; the reduction below is a
    // sequential left fold over the slots, so the result — including
    // the floating-point sums — is bit-identical for any thread count
    // (and identical to a plain serial loop).
    std::vector<DpuOutcome> outcomes(simulated);
    forEach(simulated, [&](size_t i) {
        // Spread a sample across the global index space so
        // index-dependent sharding stays representative.
        const unsigned global = simulated == num_dpus
            ? static_cast<unsigned>(i)
            : static_cast<unsigned>(i) * (num_dpus / simulated);
        sim::Dpu dpu(cfg);
        program(dpu, global);
        DpuOutcome &oc = outcomes[i];
        oc.cycles = dpu.lastElapsedCycles();
        oc.seconds = dpu.lastElapsedSeconds();
        oc.breakdown = dpu.lastBreakdown();
        oc.traffic = dpu.traffic();
    });

    double sum_seconds = 0.0;
    for (const DpuOutcome &oc : outcomes) {
        out.maxCycles = std::max(out.maxCycles, oc.cycles);
        sum_seconds += oc.seconds;
        out.breakdown.merge(oc.breakdown);
        out.traffic.merge(oc.traffic);
    }
    out.maxSeconds = cfg.cyclesToSeconds(out.maxCycles);
    out.meanSeconds = sum_seconds / static_cast<double>(simulated);

    // Scale traffic from the sample to the full system.
    if (simulated < num_dpus) {
        const double scale = static_cast<double>(num_dpus)
            / static_cast<double>(simulated);
        auto scaleUp = [scale](uint64_t v) {
            return static_cast<uint64_t>(static_cast<double>(v) * scale);
        };
        out.traffic.dataReadBytes = scaleUp(out.traffic.dataReadBytes);
        out.traffic.dataWriteBytes = scaleUp(out.traffic.dataWriteBytes);
        out.traffic.metadataReadBytes =
            scaleUp(out.traffic.metadataReadBytes);
        out.traffic.metadataWriteBytes =
            scaleUp(out.traffic.metadataWriteBytes);
        out.traffic.dmaTransfers = scaleUp(out.traffic.dmaTransfers);
    }
    return out;
}

} // namespace pim::core
