#include "core/command_queue.hh"

#include <algorithm>
#include <utility>

#include "trace/trace.hh"
#include "util/logging.hh"

namespace pim::core {

CommandQueue::CommandQueue(PimSystem &sys)
    : sys_(sys), rankT_(sys.numRanks(), 0.0)
{
}

void
CommandQueue::attachRecorder(trace::Recorder *rec)
{
    drain();
    rec_ = rec;
    traceEpoch_ = 0.0;
    if (rec_ != nullptr)
        rec_->setRankCount(sys_.numRanks());
}

double
CommandQueue::rankReadySeconds(unsigned r) const
{
    PIM_ASSERT(r < rankT_.size(), "rank out of range");
    return rankT_[r];
}

Event
CommandQueue::enqueue(Command cmd)
{
    const Event id = static_cast<Event>(
        resolvedBase_ + resolved_.size() + pending_.size());
    PIM_ASSERT(cmd.after < id, "dependency on a future command");
    pending_.push_back(std::move(cmd));
    return id;
}

double
CommandQueue::eventTime(Event e) const
{
    // Events older than the last compaction point are dominated by the
    // joined host time, so 0.0 is an exact stand-in inside the max().
    return e < static_cast<Event>(resolvedBase_)
        ? 0.0 : resolved_[static_cast<size_t>(e) - resolvedBase_];
}

double
CommandQueue::copyDuration(const DpuSet &set, uint64_t total_bytes) const
{
    return sys_.transferModel().secondsTotal(total_bytes, set.size());
}

CommandQueue::Command
CommandQueue::makeCopy(const DpuSet &set, uint64_t total_bytes,
                       bool blocking, Event after, CopyDirection dir,
                       const std::string &label) const
{
    Command cmd;
    cmd.type = Command::Type::Copy;
    cmd.after = after;
    cmd.dir = dir;
    if (rec_ != nullptr)
        cmd.label = label;
    cmd.totalBytes = total_bytes;
    cmd.copySeconds = copyDuration(set, total_bytes);
    cmd.blocking = blocking;
    cmd.ranks = set.ranks();
    return cmd;
}

double
CommandQueue::memcpy(const DpuSet &set, uint64_t bytes_per_dpu,
                     CopyDirection dir, const std::string &label)
{
    Command cmd = makeCopy(set, bytes_per_dpu * set.size(),
                           /*blocking=*/true, kNoEvent, dir, label);
    const double sec = cmd.copySeconds;
    enqueue(std::move(cmd));
    drain();
    return sec;
}

Event
CommandQueue::memcpyAsync(const DpuSet &set, uint64_t bytes_per_dpu,
                          CopyDirection dir, Event after,
                          const std::string &label)
{
    return enqueue(makeCopy(set, bytes_per_dpu * set.size(),
                            /*blocking=*/false, after, dir, label));
}

double
CommandQueue::memcpyScatter(const DpuSet &set,
                            const std::vector<uint64_t> &bytes_per_dpu,
                            CopyDirection dir, const std::string &label)
{
    PIM_ASSERT(bytes_per_dpu.size() == set.size(),
               "scatter byte counts must match the set size");
    uint64_t total = 0;
    for (const uint64_t b : bytes_per_dpu)
        total += b;
    Command cmd =
        makeCopy(set, total, /*blocking=*/true, kNoEvent, dir, label);
    const double sec = cmd.copySeconds;
    enqueue(std::move(cmd));
    drain();
    return sec;
}

Event
CommandQueue::enqueueScatter(const DpuSet &set,
                             const std::vector<uint64_t> &bytes_per_dpu,
                             CopyDirection dir, Event after,
                             const std::string &label, bool occupy_ranks)
{
    PIM_ASSERT(bytes_per_dpu.size() == set.size(),
               "scatter byte counts must match the set size");
    uint64_t total = 0;
    for (const uint64_t b : bytes_per_dpu)
        total += b;
    Command cmd =
        makeCopy(set, total, /*blocking=*/false, after, dir, label);
    cmd.occupyRanks = occupy_ranks;
    return enqueue(std::move(cmd));
}

Event
CommandQueue::memcpyScatterAsync(const DpuSet &set,
                                 std::vector<uint64_t> bytes_per_dpu,
                                 CopyDirection dir, Event after,
                                 const std::string &label)
{
    return enqueueScatter(set, bytes_per_dpu, dir, after, label,
                          /*occupy_ranks=*/true);
}

Event
CommandQueue::memcpyBufferedAsync(const DpuSet &set,
                                  uint64_t bytes_per_dpu,
                                  CopyDirection dir, Event after,
                                  const std::string &label)
{
    Command cmd = makeCopy(set, bytes_per_dpu * set.size(),
                           /*blocking=*/false, after, dir, label);
    cmd.occupyRanks = false;
    return enqueue(std::move(cmd));
}

Event
CommandQueue::memcpyScatterBufferedAsync(
    const DpuSet &set, std::vector<uint64_t> bytes_per_dpu,
    CopyDirection dir, Event after, const std::string &label)
{
    return enqueueScatter(set, bytes_per_dpu, dir, after, label,
                          /*occupy_ranks=*/false);
}

Event
CommandQueue::launch(const DpuSet &set, unsigned tasklets,
                     std::function<void(sim::Tasklet &, unsigned)> body,
                     Event after, const std::string &label)
{
    return launchProgram(
        set,
        [tasklets, body = std::move(body)](sim::Dpu &dpu,
                                           unsigned global) {
            dpu.run(tasklets,
                    [&](sim::Tasklet &t) { body(t, global); });
        },
        after, label);
}

Event
CommandQueue::launchProgram(
    const DpuSet &set,
    std::function<void(sim::Dpu &, unsigned)> program, Event after,
    const std::string &label)
{
    // A launch with no materialized member would silently run nothing
    // and cost nothing — an experiment bug, not a zero-work launch
    // (cf. PimSystemConfig::samplePerRank for rank-granular targets).
    PIM_ASSERT(!set.slots().empty(),
               "launch target contains no materialized DPU");
    Command cmd;
    cmd.type = Command::Type::Launch;
    cmd.after = after;
    if (rec_ != nullptr)
        cmd.label = label;
    cmd.program = std::move(program);
    cmd.ranks = set.ranks();
    cmd.slots = set.slots();
    cmd.slotCycles.assign(cmd.slots.size(), 0);
    return enqueue(std::move(cmd));
}

Event
CommandQueue::launchTimed(const DpuSet &set, double seconds,
                          Event after, const std::string &label)
{
    PIM_ASSERT(seconds >= 0.0, "negative launch duration");
    Command cmd;
    cmd.type = Command::Type::Launch;
    cmd.after = after;
    if (rec_ != nullptr)
        cmd.label = label;
    cmd.launchSeconds = seconds;
    cmd.ranks = set.ranks();
    return enqueue(std::move(cmd));
}

double
CommandQueue::hostCompute(uint64_t tasks, uint64_t instrs_per_task,
                          Event after, const std::string &label)
{
    return hostBusy(sys_.hostModel().seconds(tasks, instrs_per_task),
                    after, label);
}

double
CommandQueue::hostBusy(double seconds, Event after,
                       const std::string &label)
{
    Command cmd;
    cmd.type = Command::Type::HostCompute;
    cmd.after = after;
    if (rec_ != nullptr)
        cmd.label = label;
    cmd.hostSeconds = seconds;
    enqueue(std::move(cmd));
    return seconds;
}

void
CommandQueue::hostIdleUntil(double seconds, Event after,
                            const std::string &label)
{
    Command cmd;
    cmd.type = Command::Type::HostCompute;
    cmd.after = after;
    if (rec_ != nullptr)
        cmd.label = label;
    cmd.hostUntil = seconds;
    enqueue(std::move(cmd));
}

void
CommandQueue::drain()
{
    if (pending_.empty())
        return;

    // Phase 1: execute launch bodies. Each materialized slot runs its
    // launches in enqueue order (one ordered chain per slot), and the
    // chains shard across the host pool — a slot's state is only ever
    // touched by one worker, so per-DPU closures need no locking.
    std::vector<std::vector<Command *>> chains(sys_.sampleCount());
    for (Command &cmd : pending_) {
        if (cmd.type != Command::Type::Launch)
            continue;
        for (const unsigned slot : cmd.slots)
            chains[slot].push_back(&cmd);
    }
    std::vector<unsigned> active;
    for (unsigned slot = 0; slot < chains.size(); ++slot) {
        if (!chains[slot].empty())
            active.push_back(slot);
    }
    sys_.engine().forEach(active.size(), [&](size_t i) {
        const unsigned slot = active[i];
        const unsigned global = sys_.globalIndex(slot);
        sim::Dpu &dpu = sys_.dpu(slot);
        for (Command *cmd : chains[slot]) {
            cmd->program(dpu, global);
            const size_t pos = static_cast<size_t>(
                std::lower_bound(cmd->slots.begin(), cmd->slots.end(),
                                 slot)
                - cmd->slots.begin());
            cmd->slotCycles[pos] = dpu.lastElapsedCycles();
        }
    });

    // Phase 2: fold the commands into the timelines, sequentially and
    // in enqueue order — bit-identical for any worker-thread count.
    // With a recorder attached, each command also emits one span per
    // lane it occupied, at exactly the interval the fold computed.
    const double launch_overhead =
        sys_.config().xferCfg.launchLatencySec;
    auto span = [this](int lane, const std::string &name, double t0,
                       double t1, const Command &cmd, Event id,
                       bool idle = false) {
        trace::Span s;
        s.lane = lane;
        s.name = name;
        s.t0 = traceEpoch_ + t0;
        s.t1 = traceEpoch_ + t1;
        s.bytes = cmd.type == Command::Type::Copy
                && lane == trace::kBusLane
            ? cmd.totalBytes : 0;
        s.event = id;
        s.after = cmd.after;
        s.idle = idle;
        rec_->record(std::move(s));
    };
    for (Command &cmd : pending_) {
        const Event id = static_cast<Event>(
            resolvedBase_ + resolved_.size());
        const double dep =
            cmd.after == kNoEvent ? 0.0 : eventTime(cmd.after);
        switch (cmd.type) {
          case Command::Type::Launch: {
            // The host pays the driver-issue overhead, then moves on.
            const double issue_t0 = hostT_;
            hostT_ += launch_overhead;
            std::string name; // only materialized when tracing
            if (rec_ != nullptr) {
                name = cmd.label.empty() ? "launch" : cmd.label;
                span(trace::kHostLane, name + " (issue)", issue_t0,
                     hostT_, cmd, id);
            }
            // A rank with sampled members is busy for its slowest one;
            // an unsampled rank is charged the slowest sampled member
            // of the whole launch (representative-sample assumption).
            // Timed launches (launchSeconds >= 0) ran no program: every
            // rank is charged the analytic duration instead.
            const bool timed = cmd.launchSeconds >= 0.0;
            uint64_t all_max = 0;
            for (const uint64_t c : cmd.slotCycles)
                all_max = std::max(all_max, c);
            double launch_end = hostT_;
            double launch_work = 0.0;
            for (const unsigned r : cmd.ranks) {
                uint64_t rank_max = 0;
                bool rank_sampled = false;
                for (size_t i = 0; i < cmd.slots.size(); ++i) {
                    if (sys_.rankOf(sys_.globalIndex(cmd.slots[i]))
                        == r) {
                        rank_sampled = true;
                        rank_max = std::max(rank_max,
                                            cmd.slotCycles[i]);
                    }
                }
                const uint64_t cycles =
                    rank_sampled ? rank_max : all_max;
                const double dur = timed
                    ? cmd.launchSeconds
                    : sys_.config().dpuCfg.cyclesToSeconds(cycles);
                const double start =
                    std::max({hostT_, rankT_[r], dep});
                rankT_[r] = start + dur;
                launch_end = std::max(launch_end, rankT_[r]);
                launch_work = std::max(launch_work, dur);
                if (rec_ != nullptr) {
                    trace::Span s;
                    s.lane = trace::rankLane(r);
                    s.name = name;
                    s.t0 = traceEpoch_ + start;
                    s.t1 = traceEpoch_ + rankT_[r];
                    s.cycles = cycles;
                    s.event = id;
                    s.after = cmd.after;
                    rec_->record(std::move(s));
                }
            }
            // Ranks run concurrently, so one launch contributes its
            // slowest rank once to the serial-composition work sum.
            launchWork_ += launch_work;
            cmd.end = launch_end;
            break;
          }
          case Command::Type::Copy: {
            const double host_t0 = hostT_;
            // A double-buffered copy (occupyRanks false) lands in the
            // inactive buffer: it still serializes on the bus and
            // cannot start before the host issued it, but the target
            // ranks neither delay it nor stall on it.
            double start = std::max({hostT_, busT_, dep});
            if (cmd.occupyRanks) {
                for (const unsigned r : cmd.ranks)
                    start = std::max(start, rankT_[r]);
            }
            const double end = start + cmd.copySeconds;
            busT_ = end;
            if (cmd.occupyRanks) {
                for (const unsigned r : cmd.ranks)
                    rankT_[r] = end;
            }
            if (cmd.blocking)
                hostT_ = end;
            transferredBytes_ += cmd.totalBytes;
            copyWork_ += cmd.copySeconds;
            cmd.end = end;
            if (rec_ != nullptr) {
                const std::string &name = cmd.label.empty()
                    ? std::string(cmd.dir == CopyDirection::HostToPim
                                      ? "memcpy:h2p" : "memcpy:p2h")
                    : cmd.label;
                span(trace::kBusLane, name, start, end, cmd, id);
                if (cmd.occupyRanks) {
                    for (const unsigned r : cmd.ranks)
                        span(trace::rankLane(r), name, start, end, cmd,
                             id);
                }
                if (cmd.blocking && end > host_t0)
                    span(trace::kHostLane, name + " (wait)", host_t0,
                         end, cmd, id, /*idle=*/true);
            }
            break;
          }
          case Command::Type::HostCompute: {
            const double host_t0 = hostT_;
            if (cmd.hostUntil >= 0.0) {
                hostT_ = std::max({hostT_, cmd.hostUntil, dep});
                if (rec_ != nullptr && hostT_ > host_t0)
                    span(trace::kHostLane,
                         cmd.label.empty() ? std::string("idle-until")
                                           : cmd.label,
                         host_t0, hostT_, cmd, id, /*idle=*/true);
            } else {
                const double start = std::max(hostT_, dep);
                hostT_ = start + cmd.hostSeconds;
                hostWork_ += cmd.hostSeconds;
                if (rec_ != nullptr)
                    span(trace::kHostLane,
                         cmd.label.empty() ? std::string("host")
                                           : cmd.label,
                         start, hostT_, cmd, id);
            }
            cmd.end = hostT_;
            break;
          }
        }
        resolved_.push_back(cmd.end);
    }
    pending_.clear();
}

double
CommandQueue::eventSeconds(Event e)
{
    drain();
    PIM_ASSERT(e >= static_cast<Event>(resolvedBase_),
               "event ", e, " was compacted by sync()/resetTimeline");
    PIM_ASSERT(e < static_cast<Event>(resolvedBase_ + resolved_.size()),
               "unknown event ", e);
    return resolved_[static_cast<size_t>(e) - resolvedBase_];
}

double
CommandQueue::joinedTime() const
{
    double t = std::max(hostT_, busT_);
    for (const double r : rankT_)
        t = std::max(t, r);
    return t;
}

double
CommandQueue::sync()
{
    drain();
    const double t = joinedTime();
    hostT_ = t;
    // Every resolved completion is now <= the joined host time, so the
    // event history can be compacted (eventTime answers 0.0, which is
    // exact inside the start-time max()). Keeps memory bounded for
    // sync-per-step drivers like the serving simulator.
    resolvedBase_ += resolved_.size();
    resolved_.clear();
    return t;
}

void
CommandQueue::resetTimeline()
{
    drain();
    // Compacting rebases pre-reset Events to the new epoch: they
    // resolve to 0.0 and cannot leak stale absolute time in.
    resolvedBase_ += resolved_.size();
    resolved_.clear();
    // Keep the trace timeline monotonic across the reset: spans of the
    // new epoch start where the old epoch's timelines ended.
    if (rec_ != nullptr)
        traceEpoch_ += joinedTime();
    hostT_ = 0.0;
    busT_ = 0.0;
    std::fill(rankT_.begin(), rankT_.end(), 0.0);
    transferredBytes_ = 0;
    launchWork_ = 0.0;
    copyWork_ = 0.0;
    hostWork_ = 0.0;
}

} // namespace pim::core
