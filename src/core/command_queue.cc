#include "core/command_queue.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "fault/injector.hh"
#include "telemetry/registry.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace pim::core {

namespace {

/** -1 = unset; otherwise a latched CommandQueue::DrainMode. Atomic for
 *  the same reason as the SimMutex default: first use can race. */
std::atomic<int> g_default_drain_mode{-1};

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

CommandQueue::DrainMode
CommandQueue::drainModeFromEnv(const char *value)
{
    if (value == nullptr || *value == '\0'
        || std::strcmp(value, "barrier") == 0)
        return DrainMode::Barrier;
    if (std::strcmp(value, "pipelined") == 0)
        return DrainMode::Pipelined;
    PIM_FATAL("unrecognized PIM_SIM_DRAIN value \"", value,
              "\" (expected \"barrier\" or \"pipelined\")");
}

CommandQueue::DrainMode
CommandQueue::defaultDrainMode()
{
    int m = g_default_drain_mode.load(std::memory_order_relaxed);
    if (m < 0) {
        // Benign race: concurrent first calls parse the same value.
        m = static_cast<int>(
            drainModeFromEnv(std::getenv("PIM_SIM_DRAIN")));
        g_default_drain_mode.store(m, std::memory_order_relaxed);
    }
    return static_cast<DrainMode>(m);
}

void
CommandQueue::setDefaultDrainMode(DrainMode mode)
{
    g_default_drain_mode.store(static_cast<int>(mode),
                               std::memory_order_relaxed);
}

void
CommandQueue::resetDefaultDrainModeForTesting()
{
    g_default_drain_mode.store(-1, std::memory_order_relaxed);
}

const char *
CommandQueue::drainModeName(DrainMode mode)
{
    return mode == DrainMode::Barrier ? "barrier" : "pipelined";
}

CommandQueue::CommandQueue(PimSystem &sys)
    : sys_(sys), rankT_(sys.numRanks(), 0.0),
      drainMode_(defaultDrainMode())
{
}

void
CommandQueue::setDrainMode(DrainMode mode)
{
    drain();
    drainMode_ = mode;
}

TenantId
CommandQueue::addTenant(const std::string &name)
{
    PIM_ASSERT(!name.empty(), "tenant needs a display name");
    const TenantId id = static_cast<TenantId>(hostT_.size());
    hostT_.push_back(0.0);
    tenantNames_.push_back(name);
    return id;
}

void
CommandQueue::attachRecorder(trace::Recorder *rec)
{
    drain();
    rec_ = rec;
    traceEpoch_ = 0.0;
    if (rec_ != nullptr)
        rec_->setRankCount(sys_.numRanks());
}

void
CommandQueue::attachMetrics(telemetry::Registry *met)
{
    drain();
    met_ = met;
    qm_ = QueueCounters{};
    tenantMet_.clear();
    rankSid_.clear();
    busSid_ = depthSid_ = ranksBusySid_ = -1;
    if (met_ == nullptr)
        return;
    qm_.issued = &met_->counter("queue.commands_issued");
    qm_.resolved = &met_->counter("queue.commands_resolved");
    qm_.failed = &met_->counter("queue.commands_failed");
    qm_.poisoned = &met_->counter("queue.poisoned_deps");
    qm_.busBytes = &met_->counter("queue.bus_bytes");
    qm_.retries = &met_->counter("queue.transfer_retries");
    qm_.simEvents = &met_->counter("queue.sim_events");
    qm_.drainPhase1 = &met_->hostGauge("queue.drain.phase1_sec");
    qm_.drainPhase2 = &met_->hostGauge("queue.drain.phase2_sec");
    qm_.drainCps = &met_->hostGauge("queue.drain.commands_per_sec");
    telemetry::TimelineSampler &smp = met_->sampler();
    busSid_ = smp.series("util:bus");
    depthSid_ = smp.levelSeries("depth:queue");
    ranksBusySid_ = smp.series("ranks_busy");
    rankSid_.reserve(sys_.numRanks());
    for (unsigned r = 0; r < sys_.numRanks(); ++r)
        rankSid_.push_back(smp.series("util:rank" + std::to_string(r)));
    ensureTenantMetrics();
}

void
CommandQueue::ensureTenantMetrics()
{
    telemetry::TimelineSampler &smp = met_->sampler();
    while (tenantMet_.size() < hostT_.size()) {
        const TenantId t = static_cast<TenantId>(tenantMet_.size());
        const std::string &name = tenantNames_[t];
        TenantMetrics tm;
        tm.hostSid = smp.series(t == kDefaultTenant
                                    ? "util:host"
                                    : "util:host:" + name);
        // Tenant 0 has no display name; "default" keeps its busy-rank
        // curve a first-class per-tenant track in single-tenant runs.
        tm.ranksBusySid = smp.series(
            "ranks_busy:" + (name.empty() ? "default" : name));
        if (t != kDefaultTenant) {
            tm.issued =
                &met_->counter("queue.commands_issued:" + name);
            tm.resolved =
                &met_->counter("queue.commands_resolved:" + name);
            tm.failed =
                &met_->counter("queue.commands_failed:" + name);
            tm.poisoned =
                &met_->counter("queue.poisoned_deps:" + name);
            tm.busBytes = &met_->counter("queue.bus_bytes:" + name);
            tm.retries =
                &met_->counter("queue.transfer_retries:" + name);
        }
        tenantMet_.push_back(tm);
    }
}

void
CommandQueue::attachFaultInjector(fault::FaultInjector *inj)
{
    drain();
    inj_ = inj;
    rankDeathTraced_.assign(inj_ != nullptr ? sys_.numRanks() : 0, false);
}

void
CommandQueue::traceRankDeath(unsigned r, double failAtSec)
{
    // One zero-width marker per rank at the death time, so the trace
    // shows *why* the lane goes quiet.
    if (rankDeathTraced_[r])
        return;
    rankDeathTraced_[r] = true;
    if (rec_ == nullptr)
        return;
    trace::Span s;
    s.lane = trace::rankLane(r);
    s.name = "fault:rank-fail";
    s.t0 = s.t1 = traceEpoch_ + failAtSec;
    rec_->record(std::move(s));
}

int
CommandQueue::hostLane(TenantId t) const
{
    // Tenant 0 keeps the classic host lane; registered tenants issue on
    // their own resource lane so co-tenant traces stay readable.
    if (t == kDefaultTenant)
        return trace::kHostLane;
    return rec_->resourceLane("host:" + tenantNames_[t]);
}

double
CommandQueue::hostSeconds(TenantId t) const
{
    PIM_ASSERT(t < hostT_.size(), "unknown tenant ", t);
    return hostT_[t];
}

double
CommandQueue::rankReadySeconds(unsigned r) const
{
    PIM_ASSERT(r < rankT_.size(), "rank out of range");
    return rankT_[r];
}

Event
CommandQueue::enqueue(Command cmd)
{
    const Event id = static_cast<Event>(
        resolvedBase_ + resolved_.size() + pending_.size());
    if (cmd.after != kNoEvent) {
        // Fail fast on dependencies that could never name an earlier
        // command — resolving them against garbage timelines (negative
        // handles silently read as compacted history = 0.0) hides real
        // ordering bugs.
        PIM_ASSERT(cmd.after >= 0,
                   "CommandOptions::after = ", cmd.after,
                   " is not an Event handle (uninitialized or garbage "
                   "dependency; use kNoEvent for \"no dependency\")");
        PIM_ASSERT(cmd.after != id,
                   "command ", id, " depends on itself: "
                   "CommandOptions::after must name an earlier command");
        PIM_ASSERT(cmd.after < id,
                   "command ", id, " names the future event ", cmd.after,
                   " as its dependency: forward references cannot be "
                   "ordered (events are issued in enqueue order)");
    }
    PIM_ASSERT(cmd.tenant < hostT_.size(),
               "unknown tenant ", cmd.tenant,
               " (register it with addTenant first)");
    if (met_ != nullptr) {
        ensureTenantMetrics();
        qm_.issued->add();
        if (cmd.tenant != kDefaultTenant)
            tenantMet_[cmd.tenant].issued->add();
    }
    pending_.push_back(std::move(cmd));
    return id;
}

double
CommandQueue::eventTime(Event e) const
{
    // Events older than the last compaction point are dominated by the
    // joined host time, so 0.0 is an exact stand-in inside the max().
    return e < static_cast<Event>(resolvedBase_)
        ? 0.0 : resolved_[static_cast<size_t>(e) - resolvedBase_];
}

bool
CommandQueue::eventFailedInternal(Event e) const
{
    // Compacted history reads as succeeded: sync() is a barrier that
    // recovery (re-enqueue with fresh dependencies) happens behind.
    return e >= static_cast<Event>(resolvedBase_)
        && resolvedFailed_[static_cast<size_t>(e) - resolvedBase_] != 0;
}

double
CommandQueue::copyDuration(const DpuSet &set, uint64_t total_bytes) const
{
    return sys_.transferModel().secondsTotal(total_bytes, set.size());
}

CommandQueue::Command
CommandQueue::makeCopy(const DpuSet &set, uint64_t total_bytes,
                       bool blocking, const CommandOptions &opts,
                       CopyDirection dir) const
{
    Command cmd;
    cmd.type = Command::Type::Copy;
    cmd.after = opts.after;
    cmd.tenant = opts.tenant;
    cmd.dir = dir;
    if (rec_ != nullptr)
        cmd.label = opts.label;
    cmd.totalBytes = total_bytes;
    cmd.copySeconds = copyDuration(set, total_bytes);
    cmd.blocking = blocking;
    cmd.part = set.partition();
    return cmd;
}

double
CommandQueue::memcpy(const DpuSet &set, uint64_t bytes_per_dpu,
                     CopyDirection dir, const CommandOptions &opts)
{
    Command cmd = makeCopy(set, bytes_per_dpu * set.size(),
                           /*blocking=*/true, opts, dir);
    const double sec = cmd.copySeconds;
    enqueue(std::move(cmd));
    drain();
    return sec;
}

Event
CommandQueue::memcpyAsync(const DpuSet &set, uint64_t bytes_per_dpu,
                          CopyDirection dir, const CommandOptions &opts)
{
    return enqueue(makeCopy(set, bytes_per_dpu * set.size(),
                            /*blocking=*/false, opts, dir));
}

double
CommandQueue::memcpyScatter(const DpuSet &set,
                            const std::vector<uint64_t> &bytes_per_dpu,
                            CopyDirection dir, const CommandOptions &opts)
{
    PIM_ASSERT(bytes_per_dpu.size() == set.size(),
               "scatter byte counts must match the set size");
    uint64_t total = 0;
    for (const uint64_t b : bytes_per_dpu)
        total += b;
    Command cmd = makeCopy(set, total, /*blocking=*/true, opts, dir);
    const double sec = cmd.copySeconds;
    enqueue(std::move(cmd));
    drain();
    return sec;
}

Event
CommandQueue::enqueueScatter(const DpuSet &set,
                             const std::vector<uint64_t> &bytes_per_dpu,
                             CopyDirection dir,
                             const CommandOptions &opts,
                             bool occupy_ranks)
{
    PIM_ASSERT(bytes_per_dpu.size() == set.size(),
               "scatter byte counts must match the set size");
    uint64_t total = 0;
    for (const uint64_t b : bytes_per_dpu)
        total += b;
    Command cmd = makeCopy(set, total, /*blocking=*/false, opts, dir);
    cmd.occupyRanks = occupy_ranks;
    return enqueue(std::move(cmd));
}

Event
CommandQueue::memcpyScatterAsync(const DpuSet &set,
                                 std::vector<uint64_t> bytes_per_dpu,
                                 CopyDirection dir,
                                 const CommandOptions &opts)
{
    return enqueueScatter(set, bytes_per_dpu, dir, opts,
                          /*occupy_ranks=*/true);
}

Event
CommandQueue::memcpyBufferedAsync(const DpuSet &set,
                                  uint64_t bytes_per_dpu,
                                  CopyDirection dir,
                                  const CommandOptions &opts)
{
    Command cmd = makeCopy(set, bytes_per_dpu * set.size(),
                           /*blocking=*/false, opts, dir);
    cmd.occupyRanks = false;
    return enqueue(std::move(cmd));
}

Event
CommandQueue::memcpyScatterBufferedAsync(
    const DpuSet &set, std::vector<uint64_t> bytes_per_dpu,
    CopyDirection dir, const CommandOptions &opts)
{
    return enqueueScatter(set, bytes_per_dpu, dir, opts,
                          /*occupy_ranks=*/false);
}

Event
CommandQueue::launch(const DpuSet &set, unsigned tasklets,
                     std::function<void(sim::Tasklet &, unsigned)> body,
                     const CommandOptions &opts)
{
    return launchProgram(
        set,
        [tasklets, body = std::move(body)](sim::Dpu &dpu,
                                           unsigned global) {
            dpu.run(tasklets,
                    [&](sim::Tasklet &t) { body(t, global); });
        },
        opts);
}

Event
CommandQueue::launchProgram(const DpuSet &set, LaunchFn program,
                            const CommandOptions &opts)
{
    // A launch with no materialized member would silently run nothing
    // and cost nothing — an experiment bug, not a zero-work launch
    // (cf. PimSystemConfig::samplePerRank for rank-granular targets).
    PIM_ASSERT(!set.slots().empty(),
               "launch target contains no materialized DPU");
    Command cmd;
    cmd.type = Command::Type::Launch;
    cmd.after = opts.after;
    cmd.tenant = opts.tenant;
    if (rec_ != nullptr)
        cmd.label = opts.label;
    cmd.program = std::move(program);
    cmd.part = set.partition();
    const size_t nslots = cmd.part->slots.size();
    cmd.cyclesOff = slotCyclesArena_.size();
    slotCyclesArena_.resize(cmd.cyclesOff + nslots, 0);
    if (met_ != nullptr) {
        cmd.eventsOff = slotEventsArena_.size();
        slotEventsArena_.resize(cmd.eventsOff + nslots, 0);
    }
    return enqueue(std::move(cmd));
}

Event
CommandQueue::launchTimed(const DpuSet &set, double seconds,
                          const CommandOptions &opts)
{
    PIM_ASSERT(seconds >= 0.0, "negative launch duration");
    Command cmd;
    cmd.type = Command::Type::Launch;
    cmd.after = opts.after;
    cmd.tenant = opts.tenant;
    if (rec_ != nullptr)
        cmd.label = opts.label;
    cmd.launchSeconds = seconds;
    cmd.part = set.partition();
    return enqueue(std::move(cmd));
}

double
CommandQueue::hostCompute(uint64_t tasks, uint64_t instrs_per_task,
                          const CommandOptions &opts)
{
    return hostBusy(sys_.hostModel().seconds(tasks, instrs_per_task),
                    opts);
}

double
CommandQueue::hostBusy(double seconds, const CommandOptions &opts)
{
    Command cmd;
    cmd.type = Command::Type::HostCompute;
    cmd.after = opts.after;
    cmd.tenant = opts.tenant;
    if (rec_ != nullptr)
        cmd.label = opts.label;
    cmd.hostSeconds = seconds;
    enqueue(std::move(cmd));
    return seconds;
}

void
CommandQueue::hostIdleUntil(double seconds, const CommandOptions &opts)
{
    Command cmd;
    cmd.type = Command::Type::HostCompute;
    cmd.after = opts.after;
    cmd.tenant = opts.tenant;
    if (rec_ != nullptr)
        cmd.label = opts.label;
    cmd.hostUntil = seconds;
    enqueue(std::move(cmd));
}

void
CommandQueue::onComplete(Event e,
                         std::function<void(Event, double)> fn)
{
    const Event first_pending =
        static_cast<Event>(resolvedBase_ + resolved_.size());
    const Event next =
        static_cast<Event>(first_pending
                           + static_cast<Event>(pending_.size()));
    PIM_ASSERT(e != kNoEvent,
               "onComplete(kNoEvent): the event was never enqueued");
    PIM_ASSERT(e >= first_pending && e < next,
               "onComplete needs a pending event, got ", e,
               " (pending range [", first_pending, ", ", next,
               ")): register callbacks right after enqueuing");
    callbacks_.push_back(Callback{e, /*onErr=*/false, std::move(fn)});
}

void
CommandQueue::onError(Event e, std::function<void(Event, double)> fn)
{
    const Event first_pending =
        static_cast<Event>(resolvedBase_ + resolved_.size());
    const Event next =
        static_cast<Event>(first_pending
                           + static_cast<Event>(pending_.size()));
    PIM_ASSERT(e != kNoEvent,
               "onError(kNoEvent): the event was never enqueued");
    PIM_ASSERT(e >= first_pending && e < next,
               "onError needs a pending event, got ", e,
               " (pending range [", first_pending, ", ", next,
               ")): register callbacks right after enqueuing");
    callbacks_.push_back(Callback{e, /*onErr=*/true, std::move(fn)});
}

void
CommandQueue::drain()
{
    if (pending_.empty())
        return;
    PIM_ASSERT(!inCallbacks_,
               "completion callbacks may enqueue commands but must not "
               "force a drain (no sync/eventSeconds/blocking transfers)");

    const Clock::time_point t_start = Clock::now();
    const size_t folded = pending_.size();

    // Phase 1: execute launch bodies. Each materialized slot runs its
    // launches in enqueue order (one ordered chain per slot), and the
    // chains shard across the host pool — a slot's state is only ever
    // touched by one worker, so per-DPU closures need no locking.
    // chains_/activeSlots_ are scratch reused across drains: only the
    // slots the *previous* drain touched are cleared, so the build is
    // O(commands' slots), not O(sampleCount).
    if (chains_.size() < sys_.sampleCount())
        chains_.resize(sys_.sampleCount());
    for (const unsigned slot : activeSlots_)
        chains_[slot].clear();
    activeSlots_.clear();
    size_t launch_cmds = 0;
    for (Command &cmd : pending_) {
        // Timed launches carry no program: nothing to execute here.
        if (cmd.type != Command::Type::Launch || !cmd.program)
            continue;
        ++launch_cmds;
        const std::vector<unsigned> &slots = cmd.part->slots;
        for (unsigned pos = 0;
             pos < static_cast<unsigned>(slots.size()); ++pos) {
            const unsigned slot = slots[pos];
            if (chains_[slot].empty())
                activeSlots_.push_back(slot);
            chains_[slot].push_back(ChainEntry{&cmd, pos});
        }
    }
    std::sort(activeSlots_.begin(), activeSlots_.end());

    // Pipelined mode: per-command ready counters let the fold start
    // before every chain finished. Falls back to the barrier when the
    // engine cannot dispatch (no pool, or a nested drain inside a pool
    // worker) — the fold below then needs no counters at all.
    const bool pipelined = drainMode_ == DrainMode::Pipelined
        && launch_cmds > 0
        && sys_.engine().canDispatch(activeSlots_.size());
    if (pipelined) {
        if (remainingCap_ < pending_.size()) {
            remaining_ = std::make_unique<std::atomic<uint32_t>[]>(
                pending_.size());
            remainingCap_ = pending_.size();
        }
        for (size_t k = 0; k < pending_.size(); ++k) {
            const Command &cmd = pending_[k];
            const uint32_t n =
                cmd.type == Command::Type::Launch && cmd.program
                    ? static_cast<uint32_t>(cmd.part->slots.size())
                    : 0;
            remaining_[k].store(n, std::memory_order_relaxed);
        }
    }
    // Named (not a temporary): under dispatch() the engine keeps a
    // pointer to this function until waitDispatch() below.
    const std::function<void(size_t)> chainFn = [&](size_t i) {
        const unsigned slot = activeSlots_[i];
        const unsigned global = sys_.globalIndex(slot);
        sim::Dpu &dpu = sys_.dpu(slot);
        for (const ChainEntry &e : chains_[slot]) {
            e.cmd->program(dpu, global);
            slotCyclesArena_[e.cmd->cyclesOff + e.pos] =
                dpu.lastElapsedCycles();
            // Only sized while metrics are attached; each (cmd, pos)
            // is written by exactly one worker, so no synchronization.
            if (e.cmd->eventsOff != kNoArena)
                slotEventsArena_[e.cmd->eventsOff + e.pos] =
                    dpu.lastSimEvents();
            if (pipelined) {
                const size_t k =
                    static_cast<size_t>(e.cmd - pending_.data());
                if (remaining_[k].fetch_sub(
                        1, std::memory_order_acq_rel) == 1) {
                    // Empty critical section before notifying: the
                    // fold cannot then miss the wakeup between its
                    // predicate check and its wait.
                    { std::lock_guard<std::mutex> g(drainMutex_); }
                    drainCv_.notify_one();
                }
            }
        }
    };
    Clock::time_point t_phase1_end = t_start;
    if (pipelined) {
        sys_.engine().dispatch(activeSlots_.size(), chainFn);
    } else {
        sys_.engine().forEach(activeSlots_.size(), chainFn);
        t_phase1_end = Clock::now();
    }

    // Phase 2: fold the commands into the timelines, sequentially and
    // in enqueue order — bit-identical for any worker-thread count.
    // Host-side charges land on the issuing tenant's host lane; the bus
    // and the ranks are shared across tenants. With a recorder
    // attached, each command also emits one span per lane it occupied,
    // at exactly the interval the fold computed, tagged with its
    // tenant's name.
    const double launch_overhead =
        sys_.config().xferCfg.launchLatencySec;
    auto span = [this](int lane, const std::string &name, double t0,
                       double t1, const Command &cmd, Event id,
                       bool idle = false) {
        trace::Span s;
        s.lane = lane;
        s.name = name;
        s.tenant = tenantTag(cmd.tenant);
        s.t0 = traceEpoch_ + t0;
        s.t1 = traceEpoch_ + t1;
        s.bytes = cmd.type == Command::Type::Copy
                && lane == trace::kBusLane
            ? cmd.totalBytes : 0;
        s.event = id;
        s.after = cmd.after;
        s.idle = idle;
        rec_->record(std::move(s));
    };
    if (met_ != nullptr)
        ensureTenantMetrics();
    // Metric helpers (met_ != nullptr only): sampler times are
    // epoch-absolute so series stay monotonic across resetTimeline,
    // exactly like trace spans.
    auto metUtil = [this](int sid, double t0, double t1) {
        met_->sampler().accumulate(sid, traceEpoch_ + t0,
                                   traceEpoch_ + t1);
    };
    auto metRankBusy = [&](const Command &cmd, double t0, double t1,
                           unsigned r) {
        metUtil(rankSid_[r], t0, t1);
        metUtil(ranksBusySid_, t0, t1);
        metUtil(tenantMet_[cmd.tenant].ranksBusySid, t0, t1);
    };
    auto metInFlight = [this](double t0, double t1) {
        met_->sampler().eventDelta(depthSid_, traceEpoch_ + t0, +1);
        met_->sampler().eventDelta(depthSid_, traceEpoch_ + t1, -1);
    };
    const Clock::time_point t_fold_start = Clock::now();
    for (size_t cmd_idx = 0; cmd_idx < pending_.size(); ++cmd_idx) {
        Command &cmd = pending_[cmd_idx];
        if (pipelined
            && remaining_[cmd_idx].load(std::memory_order_acquire)
                   != 0) {
            // Block until every chain entry of this command ran (the
            // acquire-load pairs with the workers' release-decrements,
            // publishing the arena spans). The timeout exists only to
            // notice a worker that died mid-chain: its job drains
            // without running the remaining entries, so the counter
            // would never reach zero — join the pool instead, which
            // rethrows the worker's exception.
            std::unique_lock<std::mutex> lk(drainMutex_);
            while (!drainCv_.wait_for(
                lk, std::chrono::milliseconds(50), [&]() {
                    return remaining_[cmd_idx].load(
                               std::memory_order_acquire) == 0;
                })) {
                if (sys_.engine().dispatchDone()
                    && remaining_[cmd_idx].load(
                           std::memory_order_acquire) != 0) {
                    lk.unlock();
                    sys_.engine().waitDispatch();
                    PIM_PANIC("pipelined drain: launch chains finished "
                              "without error but command ", cmd_idx,
                              " never became ready");
                }
            }
        }
        const Event id = static_cast<Event>(
            resolvedBase_ + resolved_.size());
        const double dep =
            cmd.after == kNoEvent ? 0.0 : eventTime(cmd.after);
        double &host_t = hostT_[cmd.tenant];
        // Set by the fault paths below; recorded alongside cmd.end.
        bool failed = false;
        if (inj_ != nullptr && cmd.after != kNoEvent
            && eventFailedInternal(cmd.after)) {
            // Poisoned: the dependency failed, so this command errors
            // out the moment the failure is known, charging nothing to
            // any timeline — the failure propagates down the dependent
            // chain and nowhere else.
            cmd.end = std::max(host_t, dep);
            inj_->notePoisoned();
            if (met_ != nullptr) {
                qm_.resolved->add();
                qm_.failed->add();
                qm_.poisoned->add();
                const TenantMetrics &tm = tenantMet_[cmd.tenant];
                if (tm.poisoned != nullptr) {
                    tm.resolved->add();
                    tm.failed->add();
                    tm.poisoned->add();
                }
            }
            resolved_.push_back(cmd.end);
            resolvedFailed_.push_back(1);
            continue;
        }
        switch (cmd.type) {
          case Command::Type::Launch: {
            // The host pays the driver-issue overhead, then moves on.
            const double issue_t0 = host_t;
            host_t += launch_overhead;
            std::string name; // only materialized when tracing
            if (rec_ != nullptr) {
                name = cmd.label.empty() ? "launch" : cmd.label;
                span(hostLane(cmd.tenant), name + " (issue)", issue_t0,
                     host_t, cmd, id);
            }
            // A rank with sampled members is busy for its slowest one;
            // an unsampled rank is charged the slowest sampled member
            // of the whole launch (representative-sample assumption).
            // Timed launches (launchSeconds >= 0) ran no program: every
            // rank is charged the analytic duration instead.
            const bool timed = cmd.launchSeconds >= 0.0;
            const SlotPartition &part = *cmd.part;
            uint64_t all_max = 0;
            if (!timed) {
                for (size_t j = 0; j < part.slots.size(); ++j)
                    all_max = std::max(
                        all_max, slotCyclesArena_[cmd.cyclesOff + j]);
            }
            double launch_end = host_t;
            double launch_work = 0.0;
            // Fault decisions for this launch, made here in the
            // sequential fold so they are thread-count independent.
            const double timeout =
                inj_ != nullptr ? inj_->launchTimeoutSec() : 0.0;
            const int hang_rank = inj_ != nullptr
                ? inj_->consumeHang(part.ranks, host_t) : -1;
            if (hang_rank >= 0 && timeout <= 0.0)
                PIM_FATAL("launch hang injected on rank ", hang_rank,
                          " but no launch timeout is configured: a hung "
                          "launch would stall the simulated timeline "
                          "forever (set FaultSpec::launchTimeoutSec)");
            for (size_t ri = 0; ri < part.ranks.size(); ++ri) {
                const unsigned r = part.ranks[ri];
                // The partition's slots are grouped by rank, so this
                // rank's sampled members are one contiguous run — the
                // scan is O(slots of the launch) overall, not
                // O(ranks x slots).
                uint64_t cycles = 0;
                if (!timed) {
                    const size_t jb = part.rankSlotBegin[ri];
                    const size_t je = part.rankSlotBegin[ri + 1];
                    if (je > jb) {
                        for (size_t j = jb; j < je; ++j)
                            cycles = std::max(
                                cycles,
                                slotCyclesArena_[cmd.cyclesOff + j]);
                    } else {
                        cycles = all_max;
                    }
                }
                double dur = timed
                    ? cmd.launchSeconds
                    : sys_.config().dpuCfg.cyclesToSeconds(cycles);
                const double start =
                    std::max({host_t, rankT_[r], dep});
                bool rank_fault = false; // this rank's slice was cut
                bool charge = true;      // false: dead rank, frozen
                if (inj_ != nullptr) {
                    const double fail_at = inj_->rankFailSeconds(r);
                    if (fail_at <= start) {
                        // Already dead: nothing runs, nothing is
                        // charged; the command errors back at the time
                        // it would have started.
                        failed = rank_fault = true;
                        charge = false;
                        dur = 0.0;
                        traceRankDeath(r, fail_at);
                    } else {
                        const double mult =
                            inj_->launchMultiplier(r, start);
                        if (mult > 1.0) {
                            dur *= mult;
                            inj_->noteDegraded();
                        }
                        if (static_cast<int>(r) == hang_rank) {
                            // Hung kernel: the timeout reaps it.
                            dur = timeout;
                            failed = rank_fault = true;
                        } else if (timeout > 0.0 && dur > timeout) {
                            dur = timeout;
                            failed = rank_fault = true;
                            inj_->noteTimeout();
                        }
                        if (fail_at < start + dur) {
                            // Dies mid-launch: busy until the death,
                            // then the rank's timeline freezes.
                            dur = fail_at - start;
                            failed = rank_fault = true;
                            traceRankDeath(r, fail_at);
                        }
                    }
                }
                if (charge) {
                    rankT_[r] = start + dur;
                    launch_end = std::max(launch_end, rankT_[r]);
                    launch_work = std::max(launch_work, dur);
                    if (met_ != nullptr)
                        metRankBusy(cmd, start, rankT_[r], r);
                } else {
                    launch_end = std::max(launch_end, start);
                }
                if (rec_ != nullptr && charge) {
                    trace::Span s;
                    s.lane = trace::rankLane(r);
                    s.name = rank_fault ? name + " !fault" : name;
                    s.tenant = tenantTag(cmd.tenant);
                    s.t0 = traceEpoch_ + start;
                    s.t1 = traceEpoch_ + rankT_[r];
                    s.cycles = cycles;
                    s.event = id;
                    s.after = cmd.after;
                    rec_->record(std::move(s));
                }
            }
            // Ranks run concurrently, so one launch contributes its
            // slowest rank once to the serial-composition work sum.
            launchWork_ += launch_work;
            cmd.end = launch_end;
            if (met_ != nullptr) {
                metUtil(tenantMet_[cmd.tenant].hostSid, issue_t0,
                        host_t);
                metInFlight(issue_t0, cmd.end);
                uint64_t ev = 0;
                if (cmd.eventsOff != kNoArena) {
                    for (size_t j = 0; j < part.slots.size(); ++j)
                        ev += slotEventsArena_[cmd.eventsOff + j];
                }
                qm_.simEvents->add(ev);
            }
            break;
          }
          case Command::Type::Copy: {
            const double host_t0 = host_t;
            // A double-buffered copy (occupyRanks false) lands in the
            // inactive buffer: it still serializes on the bus and
            // cannot start before the host issued it, but the target
            // ranks neither delay it nor stall on it.
            double start = std::max({host_t, busT_, dep});
            if (cmd.occupyRanks) {
                for (const unsigned r : cmd.part->ranks)
                    start = std::max(start, rankT_[r]);
            }
            double copy_sec = cmd.copySeconds;
            if (inj_ != nullptr) {
                bool dead_target = false;
                for (const unsigned r : cmd.part->ranks) {
                    if (inj_->rankFailedBy(r, start)) {
                        dead_target = true;
                        traceRankDeath(r, inj_->rankFailSeconds(r));
                    }
                }
                if (dead_target) {
                    // The DMA errors back: the bus is held for the one
                    // attempt, the data never lands on any rank.
                    failed = true;
                } else {
                    const fault::TransferOutcome out =
                        inj_->transfer(start, cmd.copySeconds);
                    copy_sec = out.busSeconds;
                    failed = out.failed;
                    if (met_ != nullptr && out.attempts > 1) {
                        const uint64_t n = out.attempts - 1;
                        qm_.retries->add(n);
                        const TenantMetrics &tm =
                            tenantMet_[cmd.tenant];
                        if (tm.retries != nullptr)
                            tm.retries->add(n);
                    }
                }
            }
            const double end = start + copy_sec;
            busT_ = end;
            if (cmd.occupyRanks && !failed) {
                for (const unsigned r : cmd.part->ranks)
                    rankT_[r] = end;
            }
            if (cmd.blocking)
                host_t = end;
            // A failed transfer moved wire traffic but delivered no
            // payload; retries of a succeeding one deliver it once.
            if (!failed)
                transferredBytes_ += cmd.totalBytes;
            copyWork_ += copy_sec;
            cmd.end = end;
            if (met_ != nullptr) {
                metUtil(busSid_, start, end);
                if (cmd.occupyRanks && !failed) {
                    for (const unsigned r : cmd.part->ranks)
                        metRankBusy(cmd, start, end, r);
                }
                if (!failed) {
                    qm_.busBytes->add(cmd.totalBytes);
                    const TenantMetrics &tm = tenantMet_[cmd.tenant];
                    if (tm.busBytes != nullptr)
                        tm.busBytes->add(cmd.totalBytes);
                }
                metInFlight(start, end);
            }
            if (rec_ != nullptr) {
                std::string name = cmd.label.empty()
                    ? std::string(cmd.dir == CopyDirection::HostToPim
                                      ? "memcpy:h2p" : "memcpy:p2h")
                    : cmd.label;
                if (failed)
                    name += " !fault";
                span(trace::kBusLane, name, start, end, cmd, id);
                if (cmd.occupyRanks && !failed) {
                    for (const unsigned r : cmd.part->ranks)
                        span(trace::rankLane(r), name, start, end, cmd,
                             id);
                }
                if (cmd.blocking && end > host_t0)
                    span(hostLane(cmd.tenant), name + " (wait)",
                         host_t0, end, cmd, id, /*idle=*/true);
            }
            break;
          }
          case Command::Type::HostCompute: {
            const double host_t0 = host_t;
            if (cmd.hostUntil >= 0.0) {
                host_t = std::max({host_t, cmd.hostUntil, dep});
                if (rec_ != nullptr && host_t > host_t0)
                    span(hostLane(cmd.tenant),
                         cmd.label.empty() ? std::string("idle-until")
                                           : cmd.label,
                         host_t0, host_t, cmd, id, /*idle=*/true);
            } else {
                const double start = std::max(host_t0, dep);
                host_t = start + cmd.hostSeconds;
                hostWork_ += cmd.hostSeconds;
                if (rec_ != nullptr)
                    span(hostLane(cmd.tenant),
                         cmd.label.empty() ? std::string("host")
                                           : cmd.label,
                         start, host_t, cmd, id);
                if (met_ != nullptr) {
                    metUtil(tenantMet_[cmd.tenant].hostSid, start,
                            host_t);
                    metInFlight(start, host_t);
                }
            }
            cmd.end = host_t;
            break;
          }
        }
        if (met_ != nullptr) {
            qm_.resolved->add();
            const TenantMetrics &tm = tenantMet_[cmd.tenant];
            if (tm.resolved != nullptr)
                tm.resolved->add();
            if (failed) {
                qm_.failed->add();
                if (tm.failed != nullptr)
                    tm.failed->add();
            }
        }
        resolved_.push_back(cmd.end);
        resolvedFailed_.push_back(failed ? 1 : 0);
    }
    const Clock::time_point t_fold_end = Clock::now();
    if (pipelined) {
        // The fold consumed every launch, so the chains are done; the
        // join is immediate and only releases the dispatch slot (and
        // rethrows a worker exception raised after the last wait).
        sys_.engine().waitDispatch();
        t_phase1_end = Clock::now();
    }
    stats_.drains += 1;
    stats_.commands += folded;
    stats_.phase1Sec +=
        std::chrono::duration<double>(t_phase1_end - t_start).count();
    stats_.phase2Sec +=
        std::chrono::duration<double>(t_fold_end - t_fold_start)
            .count();
    stats_.wallSec += secondsSince(t_start);
    if (met_ != nullptr) {
        qm_.drainPhase1->set(stats_.phase1Sec);
        qm_.drainPhase2->set(stats_.phase2Sec);
        if (stats_.wallSec > 0.0)
            qm_.drainCps->set(static_cast<double>(stats_.commands)
                              / stats_.wallSec);
    }
    // Clear the commands AND the arenas before dispatching callbacks:
    // follow-up launches enqueued by a callback must get fresh arena
    // offsets, not append after this drain's spans.
    pending_.clear();
    slotCyclesArena_.clear();
    slotEventsArena_.clear();

    // Phase 3: dispatch due completion callbacks. Every registered
    // callback targeted a pending event, and the fold above resolved
    // all of them — sort by (completion time, event id) so dispatch is
    // timeline-ordered and independent of registration order. Swap the
    // list out first: callbacks may enqueue follow-up commands and
    // register new callbacks, which belong to the next drain.
    if (!callbacks_.empty()) {
        std::vector<Callback> due;
        due.swap(callbacks_);
        std::stable_sort(due.begin(), due.end(),
                         [this](const Callback &a, const Callback &b) {
                             const double ta = eventTime(a.event);
                             const double tb = eventTime(b.event);
                             return ta != tb ? ta < tb
                                             : a.event < b.event;
                         });
        inCallbacks_ = true;
        for (Callback &cb : due) {
            // An onComplete callback fires only if its event
            // succeeded, an onError one only if it failed; the
            // unmatched registration is dropped silently.
            if (eventFailedInternal(cb.event) == cb.onErr)
                cb.fn(cb.event, eventTime(cb.event));
        }
        inCallbacks_ = false;
    }
}

double
CommandQueue::eventSeconds(Event e)
{
    // Fail fast on handles that never named a command: kNoEvent (a
    // default-initialized Event) and ids beyond everything enqueued.
    PIM_ASSERT(e != kNoEvent,
               "eventSeconds(kNoEvent): the event was never enqueued "
               "(default Event handle)");
    PIM_ASSERT(e >= 0
                   && e < static_cast<Event>(resolvedBase_
                                             + resolved_.size()
                                             + pending_.size()),
               "eventSeconds(", e, "): the event was never enqueued");
    drain();
    PIM_ASSERT(e >= static_cast<Event>(resolvedBase_),
               "event ", e, " was compacted by sync()/resetTimeline");
    return resolved_[static_cast<size_t>(e) - resolvedBase_];
}

bool
CommandQueue::eventFailed(Event e)
{
    PIM_ASSERT(e != kNoEvent,
               "eventFailed(kNoEvent): the event was never enqueued "
               "(default Event handle)");
    PIM_ASSERT(e >= 0
                   && e < static_cast<Event>(resolvedBase_
                                             + resolved_.size()
                                             + pending_.size()),
               "eventFailed(", e, "): the event was never enqueued");
    drain();
    PIM_ASSERT(e >= static_cast<Event>(resolvedBase_),
               "event ", e, " was compacted by sync()/resetTimeline");
    return resolvedFailed_[static_cast<size_t>(e) - resolvedBase_] != 0;
}

double
CommandQueue::joinedTime() const
{
    double t = busT_;
    for (const double h : hostT_)
        t = std::max(t, h);
    for (const double r : rankT_)
        t = std::max(t, r);
    return t;
}

double
CommandQueue::sync()
{
    drain();
    const double t = joinedTime();
    std::fill(hostT_.begin(), hostT_.end(), t);
    // Every resolved completion is now <= the joined host time, so the
    // event history can be compacted (eventTime answers 0.0, which is
    // exact inside the start-time max()). Keeps memory bounded for
    // sync-per-step drivers like the serving simulator.
    resolvedBase_ += resolved_.size();
    resolved_.clear();
    resolvedFailed_.clear();
    return t;
}

void
CommandQueue::resetTimeline()
{
    drain();
    // Compacting rebases pre-reset Events to the new epoch: they
    // resolve to 0.0 and cannot leak stale absolute time in.
    resolvedBase_ += resolved_.size();
    resolved_.clear();
    resolvedFailed_.clear();
    // Keep the trace and sampler timelines monotonic across the reset:
    // spans and bins of the new epoch start where the old epoch's
    // timelines ended.
    if (rec_ != nullptr || met_ != nullptr)
        traceEpoch_ += joinedTime();
    std::fill(hostT_.begin(), hostT_.end(), 0.0);
    busT_ = 0.0;
    std::fill(rankT_.begin(), rankT_.end(), 0.0);
    transferredBytes_ = 0;
    launchWork_ = 0.0;
    copyWork_ = 0.0;
    hostWork_ = 0.0;
    stats_ = DrainStats{};
}

} // namespace pim::core
