#include "core/command_queue.hh"

#include <algorithm>
#include <utility>

#include "trace/trace.hh"
#include "util/logging.hh"

namespace pim::core {

CommandQueue::CommandQueue(PimSystem &sys)
    : sys_(sys), rankT_(sys.numRanks(), 0.0)
{
}

TenantId
CommandQueue::addTenant(const std::string &name)
{
    PIM_ASSERT(!name.empty(), "tenant needs a display name");
    const TenantId id = static_cast<TenantId>(hostT_.size());
    hostT_.push_back(0.0);
    tenantNames_.push_back(name);
    return id;
}

void
CommandQueue::attachRecorder(trace::Recorder *rec)
{
    drain();
    rec_ = rec;
    traceEpoch_ = 0.0;
    if (rec_ != nullptr)
        rec_->setRankCount(sys_.numRanks());
}

int
CommandQueue::hostLane(TenantId t) const
{
    // Tenant 0 keeps the classic host lane; registered tenants issue on
    // their own resource lane so co-tenant traces stay readable.
    if (t == kDefaultTenant)
        return trace::kHostLane;
    return rec_->resourceLane("host:" + tenantNames_[t]);
}

double
CommandQueue::hostSeconds(TenantId t) const
{
    PIM_ASSERT(t < hostT_.size(), "unknown tenant ", t);
    return hostT_[t];
}

double
CommandQueue::rankReadySeconds(unsigned r) const
{
    PIM_ASSERT(r < rankT_.size(), "rank out of range");
    return rankT_[r];
}

Event
CommandQueue::enqueue(Command cmd)
{
    const Event id = static_cast<Event>(
        resolvedBase_ + resolved_.size() + pending_.size());
    PIM_ASSERT(cmd.after < id, "dependency on a future command");
    PIM_ASSERT(cmd.tenant < hostT_.size(),
               "unknown tenant ", cmd.tenant,
               " (register it with addTenant first)");
    pending_.push_back(std::move(cmd));
    return id;
}

double
CommandQueue::eventTime(Event e) const
{
    // Events older than the last compaction point are dominated by the
    // joined host time, so 0.0 is an exact stand-in inside the max().
    return e < static_cast<Event>(resolvedBase_)
        ? 0.0 : resolved_[static_cast<size_t>(e) - resolvedBase_];
}

double
CommandQueue::copyDuration(const DpuSet &set, uint64_t total_bytes) const
{
    return sys_.transferModel().secondsTotal(total_bytes, set.size());
}

CommandQueue::Command
CommandQueue::makeCopy(const DpuSet &set, uint64_t total_bytes,
                       bool blocking, const CommandOptions &opts,
                       CopyDirection dir) const
{
    Command cmd;
    cmd.type = Command::Type::Copy;
    cmd.after = opts.after;
    cmd.tenant = opts.tenant;
    cmd.dir = dir;
    if (rec_ != nullptr)
        cmd.label = opts.label;
    cmd.totalBytes = total_bytes;
    cmd.copySeconds = copyDuration(set, total_bytes);
    cmd.blocking = blocking;
    cmd.ranks = set.ranks();
    return cmd;
}

double
CommandQueue::memcpy(const DpuSet &set, uint64_t bytes_per_dpu,
                     CopyDirection dir, const CommandOptions &opts)
{
    Command cmd = makeCopy(set, bytes_per_dpu * set.size(),
                           /*blocking=*/true, opts, dir);
    const double sec = cmd.copySeconds;
    enqueue(std::move(cmd));
    drain();
    return sec;
}

Event
CommandQueue::memcpyAsync(const DpuSet &set, uint64_t bytes_per_dpu,
                          CopyDirection dir, const CommandOptions &opts)
{
    return enqueue(makeCopy(set, bytes_per_dpu * set.size(),
                            /*blocking=*/false, opts, dir));
}

double
CommandQueue::memcpyScatter(const DpuSet &set,
                            const std::vector<uint64_t> &bytes_per_dpu,
                            CopyDirection dir, const CommandOptions &opts)
{
    PIM_ASSERT(bytes_per_dpu.size() == set.size(),
               "scatter byte counts must match the set size");
    uint64_t total = 0;
    for (const uint64_t b : bytes_per_dpu)
        total += b;
    Command cmd = makeCopy(set, total, /*blocking=*/true, opts, dir);
    const double sec = cmd.copySeconds;
    enqueue(std::move(cmd));
    drain();
    return sec;
}

Event
CommandQueue::enqueueScatter(const DpuSet &set,
                             const std::vector<uint64_t> &bytes_per_dpu,
                             CopyDirection dir,
                             const CommandOptions &opts,
                             bool occupy_ranks)
{
    PIM_ASSERT(bytes_per_dpu.size() == set.size(),
               "scatter byte counts must match the set size");
    uint64_t total = 0;
    for (const uint64_t b : bytes_per_dpu)
        total += b;
    Command cmd = makeCopy(set, total, /*blocking=*/false, opts, dir);
    cmd.occupyRanks = occupy_ranks;
    return enqueue(std::move(cmd));
}

Event
CommandQueue::memcpyScatterAsync(const DpuSet &set,
                                 std::vector<uint64_t> bytes_per_dpu,
                                 CopyDirection dir,
                                 const CommandOptions &opts)
{
    return enqueueScatter(set, bytes_per_dpu, dir, opts,
                          /*occupy_ranks=*/true);
}

Event
CommandQueue::memcpyBufferedAsync(const DpuSet &set,
                                  uint64_t bytes_per_dpu,
                                  CopyDirection dir,
                                  const CommandOptions &opts)
{
    Command cmd = makeCopy(set, bytes_per_dpu * set.size(),
                           /*blocking=*/false, opts, dir);
    cmd.occupyRanks = false;
    return enqueue(std::move(cmd));
}

Event
CommandQueue::memcpyScatterBufferedAsync(
    const DpuSet &set, std::vector<uint64_t> bytes_per_dpu,
    CopyDirection dir, const CommandOptions &opts)
{
    return enqueueScatter(set, bytes_per_dpu, dir, opts,
                          /*occupy_ranks=*/false);
}

Event
CommandQueue::launch(const DpuSet &set, unsigned tasklets,
                     std::function<void(sim::Tasklet &, unsigned)> body,
                     const CommandOptions &opts)
{
    return launchProgram(
        set,
        [tasklets, body = std::move(body)](sim::Dpu &dpu,
                                           unsigned global) {
            dpu.run(tasklets,
                    [&](sim::Tasklet &t) { body(t, global); });
        },
        opts);
}

Event
CommandQueue::launchProgram(
    const DpuSet &set,
    std::function<void(sim::Dpu &, unsigned)> program,
    const CommandOptions &opts)
{
    // A launch with no materialized member would silently run nothing
    // and cost nothing — an experiment bug, not a zero-work launch
    // (cf. PimSystemConfig::samplePerRank for rank-granular targets).
    PIM_ASSERT(!set.slots().empty(),
               "launch target contains no materialized DPU");
    Command cmd;
    cmd.type = Command::Type::Launch;
    cmd.after = opts.after;
    cmd.tenant = opts.tenant;
    if (rec_ != nullptr)
        cmd.label = opts.label;
    cmd.program = std::move(program);
    cmd.ranks = set.ranks();
    cmd.slots = set.slots();
    cmd.slotCycles.assign(cmd.slots.size(), 0);
    return enqueue(std::move(cmd));
}

Event
CommandQueue::launchTimed(const DpuSet &set, double seconds,
                          const CommandOptions &opts)
{
    PIM_ASSERT(seconds >= 0.0, "negative launch duration");
    Command cmd;
    cmd.type = Command::Type::Launch;
    cmd.after = opts.after;
    cmd.tenant = opts.tenant;
    if (rec_ != nullptr)
        cmd.label = opts.label;
    cmd.launchSeconds = seconds;
    cmd.ranks = set.ranks();
    return enqueue(std::move(cmd));
}

double
CommandQueue::hostCompute(uint64_t tasks, uint64_t instrs_per_task,
                          const CommandOptions &opts)
{
    return hostBusy(sys_.hostModel().seconds(tasks, instrs_per_task),
                    opts);
}

double
CommandQueue::hostBusy(double seconds, const CommandOptions &opts)
{
    Command cmd;
    cmd.type = Command::Type::HostCompute;
    cmd.after = opts.after;
    cmd.tenant = opts.tenant;
    if (rec_ != nullptr)
        cmd.label = opts.label;
    cmd.hostSeconds = seconds;
    enqueue(std::move(cmd));
    return seconds;
}

void
CommandQueue::hostIdleUntil(double seconds, const CommandOptions &opts)
{
    Command cmd;
    cmd.type = Command::Type::HostCompute;
    cmd.after = opts.after;
    cmd.tenant = opts.tenant;
    if (rec_ != nullptr)
        cmd.label = opts.label;
    cmd.hostUntil = seconds;
    enqueue(std::move(cmd));
}

void
CommandQueue::onComplete(Event e,
                         std::function<void(Event, double)> fn)
{
    const Event first_pending =
        static_cast<Event>(resolvedBase_ + resolved_.size());
    const Event next =
        static_cast<Event>(first_pending
                           + static_cast<Event>(pending_.size()));
    PIM_ASSERT(e != kNoEvent,
               "onComplete(kNoEvent): the event was never enqueued");
    PIM_ASSERT(e >= first_pending && e < next,
               "onComplete needs a pending event, got ", e,
               " (pending range [", first_pending, ", ", next,
               ")): register callbacks right after enqueuing");
    callbacks_.emplace_back(e, std::move(fn));
}

void
CommandQueue::drain()
{
    if (pending_.empty())
        return;
    PIM_ASSERT(!inCallbacks_,
               "completion callbacks may enqueue commands but must not "
               "force a drain (no sync/eventSeconds/blocking transfers)");

    // Phase 1: execute launch bodies. Each materialized slot runs its
    // launches in enqueue order (one ordered chain per slot), and the
    // chains shard across the host pool — a slot's state is only ever
    // touched by one worker, so per-DPU closures need no locking.
    std::vector<std::vector<Command *>> chains(sys_.sampleCount());
    for (Command &cmd : pending_) {
        if (cmd.type != Command::Type::Launch)
            continue;
        for (const unsigned slot : cmd.slots)
            chains[slot].push_back(&cmd);
    }
    std::vector<unsigned> active;
    for (unsigned slot = 0; slot < chains.size(); ++slot) {
        if (!chains[slot].empty())
            active.push_back(slot);
    }
    sys_.engine().forEach(active.size(), [&](size_t i) {
        const unsigned slot = active[i];
        const unsigned global = sys_.globalIndex(slot);
        sim::Dpu &dpu = sys_.dpu(slot);
        for (Command *cmd : chains[slot]) {
            cmd->program(dpu, global);
            const size_t pos = static_cast<size_t>(
                std::lower_bound(cmd->slots.begin(), cmd->slots.end(),
                                 slot)
                - cmd->slots.begin());
            cmd->slotCycles[pos] = dpu.lastElapsedCycles();
        }
    });

    // Phase 2: fold the commands into the timelines, sequentially and
    // in enqueue order — bit-identical for any worker-thread count.
    // Host-side charges land on the issuing tenant's host lane; the bus
    // and the ranks are shared across tenants. With a recorder
    // attached, each command also emits one span per lane it occupied,
    // at exactly the interval the fold computed, tagged with its
    // tenant's name.
    const double launch_overhead =
        sys_.config().xferCfg.launchLatencySec;
    auto span = [this](int lane, const std::string &name, double t0,
                       double t1, const Command &cmd, Event id,
                       bool idle = false) {
        trace::Span s;
        s.lane = lane;
        s.name = name;
        s.tenant = tenantTag(cmd.tenant);
        s.t0 = traceEpoch_ + t0;
        s.t1 = traceEpoch_ + t1;
        s.bytes = cmd.type == Command::Type::Copy
                && lane == trace::kBusLane
            ? cmd.totalBytes : 0;
        s.event = id;
        s.after = cmd.after;
        s.idle = idle;
        rec_->record(std::move(s));
    };
    for (Command &cmd : pending_) {
        const Event id = static_cast<Event>(
            resolvedBase_ + resolved_.size());
        const double dep =
            cmd.after == kNoEvent ? 0.0 : eventTime(cmd.after);
        double &host_t = hostT_[cmd.tenant];
        switch (cmd.type) {
          case Command::Type::Launch: {
            // The host pays the driver-issue overhead, then moves on.
            const double issue_t0 = host_t;
            host_t += launch_overhead;
            std::string name; // only materialized when tracing
            if (rec_ != nullptr) {
                name = cmd.label.empty() ? "launch" : cmd.label;
                span(hostLane(cmd.tenant), name + " (issue)", issue_t0,
                     host_t, cmd, id);
            }
            // A rank with sampled members is busy for its slowest one;
            // an unsampled rank is charged the slowest sampled member
            // of the whole launch (representative-sample assumption).
            // Timed launches (launchSeconds >= 0) ran no program: every
            // rank is charged the analytic duration instead.
            const bool timed = cmd.launchSeconds >= 0.0;
            uint64_t all_max = 0;
            for (const uint64_t c : cmd.slotCycles)
                all_max = std::max(all_max, c);
            double launch_end = host_t;
            double launch_work = 0.0;
            for (const unsigned r : cmd.ranks) {
                uint64_t rank_max = 0;
                bool rank_sampled = false;
                for (size_t i = 0; i < cmd.slots.size(); ++i) {
                    if (sys_.rankOf(sys_.globalIndex(cmd.slots[i]))
                        == r) {
                        rank_sampled = true;
                        rank_max = std::max(rank_max,
                                            cmd.slotCycles[i]);
                    }
                }
                const uint64_t cycles =
                    rank_sampled ? rank_max : all_max;
                const double dur = timed
                    ? cmd.launchSeconds
                    : sys_.config().dpuCfg.cyclesToSeconds(cycles);
                const double start =
                    std::max({host_t, rankT_[r], dep});
                rankT_[r] = start + dur;
                launch_end = std::max(launch_end, rankT_[r]);
                launch_work = std::max(launch_work, dur);
                if (rec_ != nullptr) {
                    trace::Span s;
                    s.lane = trace::rankLane(r);
                    s.name = name;
                    s.tenant = tenantTag(cmd.tenant);
                    s.t0 = traceEpoch_ + start;
                    s.t1 = traceEpoch_ + rankT_[r];
                    s.cycles = cycles;
                    s.event = id;
                    s.after = cmd.after;
                    rec_->record(std::move(s));
                }
            }
            // Ranks run concurrently, so one launch contributes its
            // slowest rank once to the serial-composition work sum.
            launchWork_ += launch_work;
            cmd.end = launch_end;
            break;
          }
          case Command::Type::Copy: {
            const double host_t0 = host_t;
            // A double-buffered copy (occupyRanks false) lands in the
            // inactive buffer: it still serializes on the bus and
            // cannot start before the host issued it, but the target
            // ranks neither delay it nor stall on it.
            double start = std::max({host_t, busT_, dep});
            if (cmd.occupyRanks) {
                for (const unsigned r : cmd.ranks)
                    start = std::max(start, rankT_[r]);
            }
            const double end = start + cmd.copySeconds;
            busT_ = end;
            if (cmd.occupyRanks) {
                for (const unsigned r : cmd.ranks)
                    rankT_[r] = end;
            }
            if (cmd.blocking)
                host_t = end;
            transferredBytes_ += cmd.totalBytes;
            copyWork_ += cmd.copySeconds;
            cmd.end = end;
            if (rec_ != nullptr) {
                const std::string &name = cmd.label.empty()
                    ? std::string(cmd.dir == CopyDirection::HostToPim
                                      ? "memcpy:h2p" : "memcpy:p2h")
                    : cmd.label;
                span(trace::kBusLane, name, start, end, cmd, id);
                if (cmd.occupyRanks) {
                    for (const unsigned r : cmd.ranks)
                        span(trace::rankLane(r), name, start, end, cmd,
                             id);
                }
                if (cmd.blocking && end > host_t0)
                    span(hostLane(cmd.tenant), name + " (wait)",
                         host_t0, end, cmd, id, /*idle=*/true);
            }
            break;
          }
          case Command::Type::HostCompute: {
            const double host_t0 = host_t;
            if (cmd.hostUntil >= 0.0) {
                host_t = std::max({host_t, cmd.hostUntil, dep});
                if (rec_ != nullptr && host_t > host_t0)
                    span(hostLane(cmd.tenant),
                         cmd.label.empty() ? std::string("idle-until")
                                           : cmd.label,
                         host_t0, host_t, cmd, id, /*idle=*/true);
            } else {
                const double start = std::max(host_t0, dep);
                host_t = start + cmd.hostSeconds;
                hostWork_ += cmd.hostSeconds;
                if (rec_ != nullptr)
                    span(hostLane(cmd.tenant),
                         cmd.label.empty() ? std::string("host")
                                           : cmd.label,
                         start, host_t, cmd, id);
            }
            cmd.end = host_t;
            break;
          }
        }
        resolved_.push_back(cmd.end);
    }
    pending_.clear();

    // Phase 3: dispatch due completion callbacks. Every registered
    // callback targeted a pending event, and the fold above resolved
    // all of them — sort by (completion time, event id) so dispatch is
    // timeline-ordered and independent of registration order. Swap the
    // list out first: callbacks may enqueue follow-up commands and
    // register new callbacks, which belong to the next drain.
    if (!callbacks_.empty()) {
        std::vector<std::pair<Event, std::function<void(Event, double)>>>
            due;
        due.swap(callbacks_);
        std::stable_sort(due.begin(), due.end(),
                         [this](const auto &a, const auto &b) {
                             const double ta = eventTime(a.first);
                             const double tb = eventTime(b.first);
                             return ta != tb ? ta < tb
                                             : a.first < b.first;
                         });
        inCallbacks_ = true;
        for (auto &[e, fn] : due)
            fn(e, eventTime(e));
        inCallbacks_ = false;
    }
}

double
CommandQueue::eventSeconds(Event e)
{
    // Fail fast on handles that never named a command: kNoEvent (a
    // default-initialized Event) and ids beyond everything enqueued.
    PIM_ASSERT(e != kNoEvent,
               "eventSeconds(kNoEvent): the event was never enqueued "
               "(default Event handle)");
    PIM_ASSERT(e >= 0
                   && e < static_cast<Event>(resolvedBase_
                                             + resolved_.size()
                                             + pending_.size()),
               "eventSeconds(", e, "): the event was never enqueued");
    drain();
    PIM_ASSERT(e >= static_cast<Event>(resolvedBase_),
               "event ", e, " was compacted by sync()/resetTimeline");
    return resolved_[static_cast<size_t>(e) - resolvedBase_];
}

double
CommandQueue::joinedTime() const
{
    double t = busT_;
    for (const double h : hostT_)
        t = std::max(t, h);
    for (const double r : rankT_)
        t = std::max(t, r);
    return t;
}

double
CommandQueue::sync()
{
    drain();
    const double t = joinedTime();
    std::fill(hostT_.begin(), hostT_.end(), t);
    // Every resolved completion is now <= the joined host time, so the
    // event history can be compacted (eventTime answers 0.0, which is
    // exact inside the start-time max()). Keeps memory bounded for
    // sync-per-step drivers like the serving simulator.
    resolvedBase_ += resolved_.size();
    resolved_.clear();
    return t;
}

void
CommandQueue::resetTimeline()
{
    drain();
    // Compacting rebases pre-reset Events to the new epoch: they
    // resolve to 0.0 and cannot leak stale absolute time in.
    resolvedBase_ += resolved_.size();
    resolved_.clear();
    // Keep the trace timeline monotonic across the reset: spans of the
    // new epoch start where the old epoch's timelines ended.
    if (rec_ != nullptr)
        traceEpoch_ += joinedTime();
    std::fill(hostT_.begin(), hostT_.end(), 0.0);
    busT_ = 0.0;
    std::fill(rankT_.begin(), rankT_.end(), 0.0);
    transferredBytes_ = 0;
    launchWork_ = 0.0;
    copyWork_ = 0.0;
    hostWork_ = 0.0;
}

} // namespace pim::core
