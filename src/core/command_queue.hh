/**
 * @file
 * Asynchronous command-queue runtime (the unified execution path of the
 * Fig 5 host programming model). Every way the repo drives DPUs —
 * simulateDpus(), HostRuntime, the graph/LLM workload drivers — funnels
 * through this queue: commands are enqueued against a DpuSet and
 * resolved against three kinds of timelines:
 *
 *   host      — the single host thread issuing commands (hostCompute,
 *               blocking transfers, launch-issue overhead);
 *   bus       — the shared host<->PIM transfer engine (memcpy commands
 *               serialize here, costed by the transfer model);
 *   per-rank  — each rank executes launches and receives transfers
 *               independently, so launches on disjoint ranks overlap,
 *               and host compute overlaps in-flight launches.
 *
 * Launch bodies run on the ParallelDpuEngine host pool when the queue
 * drains (sync(), a blocking transfer, or elapsed-time queries force a
 * drain); the timeline fold afterwards is sequential in enqueue order,
 * so every result is bit-identical for any worker-thread count. sync()
 * joins all timelines and returns the makespan — overlapped host and
 * PIM work is costed as max-of-timelines, not sum.
 *
 * Sampling: launches simulate only the materialized sample slots inside
 * the target set. A touched rank's launch time is the max over its
 * sampled members; ranks with no sampled member are charged the max
 * over all sampled members of the launch (the sample is assumed
 * representative, consistent with the reduction in core::simulateDpus).
 *
 * Tracing: attachRecorder() hooks a trace::Recorder into the drain —
 * every resolved command then also emits spans on the lane(s) it
 * occupied (host, bus, per rank), carrying bytes/cycles and its Event
 * id/dependency, so the exact interval arithmetic above becomes
 * visible in chrome://tracing and analyzable as per-lane occupancy.
 * Every command accepts an optional label naming its span. With no
 * recorder attached the cost is one pointer test per resolved command.
 */

#ifndef PIM_CORE_COMMAND_QUEUE_HH
#define PIM_CORE_COMMAND_QUEUE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/pim_system.hh"

namespace pim::trace {
class Recorder;
}

namespace pim::core {

/** Direction of a memcpy command. */
enum class CopyDirection {
    HostToPim,
    PimToHost,
};

/**
 * Completion handle of an enqueued command; pass as `after` to order a
 * later command behind it explicitly (program order already serializes
 * the host and each rank).
 */
using Event = int;

/** "No dependency" — the command orders only by its timelines. */
inline constexpr Event kNoEvent = -1;

/** The co-processor command queue of one PimSystem. */
class CommandQueue
{
  public:
    explicit CommandQueue(PimSystem &sys);

    /**
     * Blocking bulk transfer of @p bytes_per_dpu to/from every DPU of
     * @p set in one batched call: drains the queue, then occupies the
     * host, the bus, and the target ranks. @return seconds of the copy
     * itself (the modeled duration, excluding any wait).
     */
    double memcpy(const DpuSet &set, uint64_t bytes_per_dpu,
                  CopyDirection dir, const std::string &label = "");

    /**
     * Asynchronous bulk transfer: enqueues the copy and returns
     * immediately; the copy occupies the bus and the target ranks but
     * not the host. @return completion event.
     */
    Event memcpyAsync(const DpuSet &set, uint64_t bytes_per_dpu,
                      CopyDirection dir, Event after = kNoEvent,
                      const std::string &label = "");

    /**
     * Blocking scatter/gather transfer with one byte count per DPU of
     * @p set (indexed by position in the set; must match set.size()).
     * Costed as one batched call moving the summed payload at the
     * set-wide bandwidth. @return seconds of the copy itself.
     */
    double memcpyScatter(const DpuSet &set,
                         const std::vector<uint64_t> &bytes_per_dpu,
                         CopyDirection dir,
                         const std::string &label = "");

    /** Asynchronous scatter/gather transfer. @return completion event. */
    Event memcpyScatterAsync(const DpuSet &set,
                             std::vector<uint64_t> bytes_per_dpu,
                             CopyDirection dir, Event after = kNoEvent,
                             const std::string &label = "");

    /**
     * Double-buffered asynchronous transfer of @p bytes_per_dpu to/from
     * every DPU of @p set: the DMA lands in the inactive half of a
     * double-buffered region, so it occupies the bus (serializing with
     * other transfers) but does NOT stall the target ranks' compute
     * timeline — in-flight launches on those ranks keep running. The
     * caller is responsible for only reading the shipped data after the
     * returned event (the double-buffer swap). @return completion event.
     */
    Event memcpyBufferedAsync(const DpuSet &set, uint64_t bytes_per_dpu,
                              CopyDirection dir, Event after = kNoEvent,
                              const std::string &label = "");

    /** Double-buffered scatter/gather (per-DPU byte counts); see
     *  memcpyBufferedAsync. @return completion event. */
    Event memcpyScatterBufferedAsync(const DpuSet &set,
                                     std::vector<uint64_t> bytes_per_dpu,
                                     CopyDirection dir,
                                     Event after = kNoEvent,
                                     const std::string &label = "");

    /**
     * Asynchronously launch @p tasklets tasklets running @p body on
     * every DPU of @p set; the body receives the tasklet context and
     * the DPU's global index, and must not touch state shared between
     * DPUs. The host pays only the launch-issue overhead; the target
     * ranks are busy for their slowest member's makespan. @return
     * completion event.
     */
    Event launch(const DpuSet &set, unsigned tasklets,
                 std::function<void(sim::Tasklet &, unsigned)> body,
                 Event after = kNoEvent, const std::string &label = "");

    /**
     * Asynchronously launch heterogeneous per-DPU work: @p program
     * receives each materialized DPU of @p set and its global index,
     * and drives it directly (Dpu::run / runBodies, any number of
     * phases). The launch's cost on a rank is the max over its members'
     * final Dpu::lastElapsedCycles() — phases before the last run are
     * setup and not charged. @return completion event.
     */
    Event launchProgram(const DpuSet &set,
                        std::function<void(sim::Dpu &, unsigned)> program,
                        Event after = kNoEvent,
                        const std::string &label = "");

    /**
     * Asynchronously occupy every rank of @p set for @p seconds of
     * modeled kernel time — a bandwidth-costed launch whose duration
     * the caller computed analytically (e.g. a streaming attention
     * kernel bounded by MRAM bandwidth) instead of simulating tasklets.
     * Costed exactly like launchProgram: the host pays the launch-issue
     * overhead and moves on; each target rank is busy for @p seconds
     * starting when the issue, the rank, and @p after allow.
     * @return completion event.
     */
    Event launchTimed(const DpuSet &set, double seconds,
                      Event after = kNoEvent,
                      const std::string &label = "");

    /**
     * Host-side compute of @p tasks independent tasks of
     * @p instrs_per_task instructions (the pthreads parallel-for of
     * Fig 5); occupies only the host timeline, overlapping in-flight
     * launches and async transfers. @return modeled seconds.
     */
    double hostCompute(uint64_t tasks, uint64_t instrs_per_task,
                       Event after = kNoEvent,
                       const std::string &label = "");

    /** Occupy the host for a fixed @p seconds (driver bookkeeping). */
    double hostBusy(double seconds, Event after = kNoEvent,
                    const std::string &label = "");

    /**
     * Idle the host until at least absolute time @p seconds on the
     * timeline (wait for an external event such as a request arrival);
     * no-op if the host is already past it.
     */
    void hostIdleUntil(double seconds, Event after = kNoEvent,
                       const std::string &label = "");

    /**
     * Drain the queue and join every timeline. @return the makespan:
     * wall-clock seconds from the timeline origin until host, bus, and
     * all ranks are idle.
     */
    double sync();

    /**
     * Completion timestamp of event @p e on the timeline: drains
     * pending commands (without joining the timelines, unlike sync())
     * and returns the absolute second the command finished at — the
     * primitive completion-driven drivers (TPOT accounting, admission
     * control) are built on. Fatal for events compacted away by a
     * sync()/resetTimeline that happened after the event was enqueued:
     * query timestamps before syncing.
     */
    double eventSeconds(Event e);

    /**
     * Host timeline as of the last drain (sync() first for a makespan
     * that includes pending commands).
     */
    double elapsedSeconds() const { return hostT_; }

    /** Rank @p r's timeline as of the last drain. */
    double rankReadySeconds(unsigned r) const;

    /** Bus timeline as of the last drain. */
    double busReadySeconds() const { return busT_; }

    /** Cumulative host<->PIM bytes moved by resolved copies. */
    uint64_t transferredBytes() const { return transferredBytes_; }

    /** Seconds of launch work resolved so far (sum, not makespan). */
    double launchWorkSeconds() const { return launchWork_; }

    /** Seconds of transfer work resolved so far (sum, not makespan). */
    double copyWorkSeconds() const { return copyWork_; }

    /** Seconds of host work resolved so far (sum, not makespan). */
    double hostWorkSeconds() const { return hostWork_; }

    /** Commands enqueued but not yet resolved. */
    size_t pendingCommands() const { return pending_.size(); }

    /**
     * Zero every timeline and work/traffic counter (DPU state is kept).
     * Pending commands are drained first so simulation state stays
     * consistent. An attached recorder is NOT cleared: its trace origin
     * advances past everything recorded so far, so spans resolved after
     * the reset land strictly later on the trace timeline and pre-reset
     * history stays readable (mirroring how pre-reset Events are rebased
     * to resolve at the new epoch's origin).
     */
    void resetTimeline();

    /**
     * Start feeding per-command spans to @p rec (nullptr detaches).
     * Drains pending commands first — already-enqueued commands resolve
     * under the previous recorder (if any) — and restarts the trace
     * origin at zero.
     */
    void attachRecorder(trace::Recorder *rec);

    /** The attached recorder (nullptr when tracing is off). */
    trace::Recorder *recorder() const { return rec_; }

  private:
    struct Command
    {
        enum class Type { Launch, Copy, HostCompute };

        Type type;
        Event after = kNoEvent;
        /** Trace span name; empty = the command-kind default. Only
         *  populated while a recorder is attached. */
        std::string label;
        /** Copy direction (trace naming only; the cost is symmetric). */
        CopyDirection dir = CopyDirection::HostToPim;

        // Launch
        std::function<void(sim::Dpu &, unsigned)> program;
        /** >= 0: analytic launch duration (launchTimed); no program. */
        double launchSeconds = -1.0;
        // Copy
        uint64_t totalBytes = 0;
        double copySeconds = 0.0;
        bool blocking = false;
        /** False for double-buffered copies: the transfer holds the bus
         *  but leaves the target ranks' compute timeline untouched. */
        bool occupyRanks = true;
        // HostCompute
        double hostSeconds = 0.0;
        /** >= 0: idle the host until this absolute time instead. */
        double hostUntil = -1.0;

        // Target (Launch / Copy).
        std::vector<unsigned> ranks;
        std::vector<unsigned> slots;
        /** Per-slot makespan of a launch, filled at drain. */
        std::vector<uint64_t> slotCycles;

        /** Completion time, filled at drain. */
        double end = 0.0;
    };

    Event enqueue(Command cmd);
    Event enqueueScatter(const DpuSet &set,
                         const std::vector<uint64_t> &bytes_per_dpu,
                         CopyDirection dir, Event after,
                         const std::string &label, bool occupy_ranks);
    double copyDuration(const DpuSet &set, uint64_t total_bytes) const;
    Command makeCopy(const DpuSet &set, uint64_t total_bytes,
                     bool blocking, Event after, CopyDirection dir,
                     const std::string &label) const;
    /** Execute pending launch bodies and fold every pending command
     *  into the timelines, in enqueue order. */
    void drain();

    /** The joined time of all timelines (no drain). */
    double joinedTime() const;

    /** Completion time of event @p e (0.0 for compacted history). */
    double eventTime(Event e) const;

    PimSystem &sys_;
    std::vector<Command> pending_;
    /**
     * Completion times of resolved commands, indexed by
     * Event - resolvedBase_. Compacted at every sync(): once all
     * timelines are joined, the host time dominates every earlier
     * completion, so the history collapses to the base offset and the
     * queue's memory stays bounded no matter how many commands ran.
     */
    std::vector<double> resolved_;
    size_t resolvedBase_ = 0;
    double hostT_ = 0.0;
    double busT_ = 0.0;
    std::vector<double> rankT_;
    uint64_t transferredBytes_ = 0;
    double launchWork_ = 0.0;
    double copyWork_ = 0.0;
    double hostWork_ = 0.0;
    /** Span sink; nullptr = tracing off. */
    trace::Recorder *rec_ = nullptr;
    /** Trace-time origin of the current timeline epoch: resetTimeline
     *  advances it so post-reset spans never overlap pre-reset ones. */
    double traceEpoch_ = 0.0;
};

} // namespace pim::core

#endif // PIM_CORE_COMMAND_QUEUE_HH
