/**
 * @file
 * Asynchronous command-queue runtime (the unified execution path of the
 * Fig 5 host programming model). Every way the repo drives DPUs —
 * simulateDpus(), HostRuntime, the graph/LLM workload drivers — funnels
 * through this queue: commands are enqueued against a DpuSet and
 * resolved against three kinds of timelines:
 *
 *   host      — one issue timeline per *tenant* (see below; a single-
 *               tenant queue has exactly one, the classic host thread)
 *               carrying hostCompute, blocking transfers, and
 *               launch-issue overhead;
 *   bus       — the shared host<->PIM transfer engine (memcpy commands
 *               serialize here, costed by the transfer model);
 *   per-rank  — each rank executes launches and receives transfers
 *               independently, so launches on disjoint ranks overlap,
 *               and host compute overlaps in-flight launches.
 *
 * Multi-tenancy: addTenant() registers an independent host issue
 * timeline, and every command names its tenant via CommandOptions. Two
 * drivers (e.g. an LLM serving engine and a graph update driver) can
 * then share one queue and one PimSystem: each tenant's commands
 * serialize on its own host lane and on the ranks it targets (rank
 * ownership is arbitrated by core::RankScheduler), while the bus stays
 * the single shared resource both contend on — exactly the interference
 * structure of a shared PIM serving host. With zero registered tenants
 * the fold is identical to the historical single-host queue.
 *
 * Submission API: every command takes a trailing CommandOptions{after,
 * label, tenant}. The historical positional tails (`after`, `label`)
 * survive as thin deprecated overloads so old call sites compile
 * unchanged, but new code should pass CommandOptions.
 *
 * Completion callbacks: onComplete(event, fn) registers a host-side
 * callback on a pending event; the next drain dispatches due callbacks
 * deterministically in timeline order (completion time, then event id),
 * after the fold. Callbacks may enqueue follow-up commands (they resolve
 * at the next drain) but must not force a drain themselves.
 *
 * Launch bodies run on the ParallelDpuEngine host pool when the queue
 * drains (sync(), a blocking transfer, or elapsed-time queries force a
 * drain); the timeline fold afterwards is sequential in enqueue order,
 * so every result is bit-identical for any worker-thread count. sync()
 * joins all timelines and returns the makespan — overlapped host and
 * PIM work is costed as max-of-timelines, not sum.
 *
 * Sampling: launches simulate only the materialized sample slots inside
 * the target set. A touched rank's launch time is the max over its
 * sampled members; ranks with no sampled member are charged the max
 * over all sampled members of the launch (the sample is assumed
 * representative, consistent with the reduction in core::simulateDpus).
 *
 * Tracing: attachRecorder() hooks a trace::Recorder into the drain —
 * every resolved command then also emits spans on the lane(s) it
 * occupied (host, bus, per rank), carrying bytes/cycles and its Event
 * id/dependency, so the exact interval arithmetic above becomes
 * visible in chrome://tracing and analyzable as per-lane occupancy.
 * Spans of a registered tenant carry the tenant's name (the hook for
 * trace::analyzeOccupancy's per-tenant attribution), and a tenant's
 * host lane appears as a dedicated "host:<name>" lane. With no recorder
 * attached the cost is one pointer test per resolved command.
 *
 * Fault injection: attachFaultInjector() routes every fold decision
 * through a deterministic fault::FaultInjector. Commands then gain a
 * failure state — eventFailed(e) reports it, onError(e, fn) registers
 * an error callback dispatched in the same (completion time, event id)
 * order as onComplete. Semantics: a launch or transfer touching a rank
 * that is dead at its start time fails immediately without charging
 * that rank (a transfer still holds the bus for the erroring attempt);
 * a rank dying mid-launch truncates the launch at the death and fails
 * the command; transient transfer faults are retried with capped
 * exponential backoff costed on the bus (permanent failure once the
 * attempt budget is exhausted); launches exceeding the timeout knob
 * are reaped at start + timeout; and a command whose `after`
 * dependency failed is *poisoned* — it fails at the time the failure
 * was known, charges nothing to any timeline, and propagates failure
 * to its own dependents, so a dead rank poisons exactly the dependent
 * chain, never the whole drain. Note that phase 1 still executes the
 * launch bodies of doomed commands (failure is decided in the fold):
 * recovery layers must stage simulation-state effects and commit only
 * on event success, or be idempotent. With no injector attached every
 * path is bit-identical to the fault-free queue.
 */

#ifndef PIM_CORE_COMMAND_QUEUE_HH
#define PIM_CORE_COMMAND_QUEUE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pim_system.hh"
#include "util/small_function.hh"

namespace pim::trace {
class Recorder;
}

namespace pim::fault {
class FaultInjector;
}

namespace pim::telemetry {
class Counter;
class Gauge;
class Registry;
}

namespace pim::core {

/** Direction of a memcpy command. */
enum class CopyDirection {
    HostToPim,
    PimToHost,
};

/**
 * Completion handle of an enqueued command; pass as `after` to order a
 * later command behind it explicitly (program order already serializes
 * each tenant's host lane and each rank).
 */
using Event = int;

/** "No dependency" — the command orders only by its timelines. */
inline constexpr Event kNoEvent = -1;

/**
 * Tenant handle: index of a host issue timeline. Tenant 0 is the
 * default (anonymous) host every queue starts with; addTenant()
 * registers further ones.
 */
using TenantId = unsigned;

/** The implicit host timeline of a single-tenant queue. */
inline constexpr TenantId kDefaultTenant = 0;

/**
 * Per-command submission options — the v2 form of the positional
 * `after`/`label` tails every command used to take. Designated
 * initializers read best at call sites:
 *
 *   queue.launchTimed(ranks, sec, {.after = ev, .label = "attn"});
 *   queue.memcpyAsync(set, bytes, dir, {.tenant = serving});
 */
struct CommandOptions
{
    /** Explicit dependency (kNoEvent = timeline order only). */
    Event after = kNoEvent;
    /** Trace span name (used only while a recorder is attached). */
    std::string label{};
    /** Host issue timeline the command runs on (see addTenant). */
    TenantId tenant = kDefaultTenant;
};

/**
 * A launch-body callable. SmallFunction with 64 bytes of inline
 * storage: the composed closure launch() builds (a tasklet count plus a
 * moved std::function body) fits without the per-enqueue heap
 * allocation std::function's 16-byte buffer would force; larger
 * closures still work via the heap fallback.
 */
using LaunchFn = util::SmallFunction<void(sim::Dpu &, unsigned), 64>;

/** The co-processor command queue of one PimSystem. */
class CommandQueue
{
  public:
    /**
     * Drain scheduling mode (the PIM_SIM_DRAIN knob). Both modes
     * produce bit-identical results — the timeline fold is strictly
     * sequential in enqueue order either way; the mode only decides
     * whether the fold waits for *all* launch chains before starting.
     */
    enum class DrainMode {
        /** Classic two-phase drain: phase 2 starts after every launch
         *  chain finished (one pool barrier per drain). */
        Barrier,
        /** The fold consumes commands in enqueue order as their slot
         *  results become ready (per-command atomic remaining-slot
         *  counters), overlapping DPU simulation with timeline
         *  folding. Falls back to Barrier when the engine has no pool
         *  to overlap with (PIM_SIM_THREADS=1 or a nested drain). */
        Pipelined,
    };

    /**
     * Parse a PIM_SIM_DRAIN value: unset / "" / "barrier" -> Barrier,
     * "pipelined" -> Pipelined; anything else is a fatal config error.
     */
    static DrainMode drainModeFromEnv(const char *value);

    /** Process-wide default mode: latched from PIM_SIM_DRAIN on first
     *  use (or set programmatically); new queues start from it. */
    static DrainMode defaultDrainMode();

    /** Override the process-wide default (tests, benches). */
    static void setDefaultDrainMode(DrainMode mode);

    /** Forget the latched default so the next defaultDrainMode() call
     *  re-reads PIM_SIM_DRAIN (testing only). */
    static void resetDefaultDrainModeForTesting();

    /** Display name of @p mode ("barrier" / "pipelined"). */
    static const char *drainModeName(DrainMode mode);

    /**
     * Cumulative host-wall cost of this queue's drains — the real time
     * the simulator spent orchestrating, as opposed to the simulated
     * time the fold computes. phase1Sec spans launch-body execution
     * (dispatch to pool join), phase2Sec the sequential fold; under
     * Pipelined the two windows overlap, so they can sum to more than
     * wallSec. Zeroed by resetTimeline() alongside the work counters.
     */
    struct DrainStats
    {
        /** Drains that resolved at least one command. */
        uint64_t drains = 0;
        /** Commands resolved across those drains. */
        uint64_t commands = 0;
        double phase1Sec = 0.0;
        double phase2Sec = 0.0;
        double wallSec = 0.0;
    };

    explicit CommandQueue(PimSystem &sys);

    /** This queue's drain mode (latched from defaultDrainMode() at
     *  construction; see setDrainMode). */
    DrainMode drainMode() const { return drainMode_; }

    /** Switch the drain mode; pending commands drain under the old
     *  mode first (results are identical either way). */
    void setDrainMode(DrainMode mode);

    /** Host-wall drain cost accumulated so far (see DrainStats). */
    const DrainStats &drainStats() const { return stats_; }

    /**
     * Register a tenant: an independent host issue timeline named
     * @p name (shown as lane "host:<name>" in traces, and the key of
     * per-tenant occupancy attribution). Register tenants before
     * issuing their commands; the new timeline starts at 0.
     */
    TenantId addTenant(const std::string &name);

    /** Registered tenants, including the implicit tenant 0. */
    unsigned tenantCount() const
    {
        return static_cast<unsigned>(hostT_.size());
    }

    /**
     * Blocking bulk transfer of @p bytes_per_dpu to/from every DPU of
     * @p set in one batched call: drains the queue, then occupies the
     * issuing tenant's host lane, the bus, and the target ranks.
     * @return seconds of the copy itself (the modeled duration,
     * excluding any wait).
     */
    double memcpy(const DpuSet &set, uint64_t bytes_per_dpu,
                  CopyDirection dir, const CommandOptions &opts = {});

    /**
     * Asynchronous bulk transfer: enqueues the copy and returns
     * immediately; the copy occupies the bus and the target ranks but
     * not the host. @return completion event.
     */
    Event memcpyAsync(const DpuSet &set, uint64_t bytes_per_dpu,
                      CopyDirection dir, const CommandOptions &opts = {});

    /**
     * Blocking scatter/gather transfer with one byte count per DPU of
     * @p set (indexed by position in the set; must match set.size()).
     * Costed as one batched call moving the summed payload at the
     * set-wide bandwidth. @return seconds of the copy itself.
     */
    double memcpyScatter(const DpuSet &set,
                         const std::vector<uint64_t> &bytes_per_dpu,
                         CopyDirection dir,
                         const CommandOptions &opts = {});

    /** Asynchronous scatter/gather transfer. @return completion event. */
    Event memcpyScatterAsync(const DpuSet &set,
                             std::vector<uint64_t> bytes_per_dpu,
                             CopyDirection dir,
                             const CommandOptions &opts = {});

    /**
     * Double-buffered asynchronous transfer of @p bytes_per_dpu to/from
     * every DPU of @p set: the DMA lands in the inactive half of a
     * double-buffered region, so it occupies the bus (serializing with
     * other transfers) but does NOT stall the target ranks' compute
     * timeline — in-flight launches on those ranks keep running. The
     * caller is responsible for only reading the shipped data after the
     * returned event (the double-buffer swap). @return completion event.
     */
    Event memcpyBufferedAsync(const DpuSet &set, uint64_t bytes_per_dpu,
                              CopyDirection dir,
                              const CommandOptions &opts = {});

    /** Double-buffered scatter/gather (per-DPU byte counts); see
     *  memcpyBufferedAsync. @return completion event. */
    Event memcpyScatterBufferedAsync(const DpuSet &set,
                                     std::vector<uint64_t> bytes_per_dpu,
                                     CopyDirection dir,
                                     const CommandOptions &opts = {});

    /**
     * Asynchronously launch @p tasklets tasklets running @p body on
     * every DPU of @p set; the body receives the tasklet context and
     * the DPU's global index, and must not touch state shared between
     * DPUs. The host pays only the launch-issue overhead; the target
     * ranks are busy for their slowest member's makespan. @return
     * completion event.
     */
    Event launch(const DpuSet &set, unsigned tasklets,
                 std::function<void(sim::Tasklet &, unsigned)> body,
                 const CommandOptions &opts = {});

    /**
     * Asynchronously launch heterogeneous per-DPU work: @p program
     * receives each materialized DPU of @p set and its global index,
     * and drives it directly (Dpu::run / runBodies, any number of
     * phases). The launch's cost on a rank is the max over its members'
     * final Dpu::lastElapsedCycles() — phases before the last run are
     * setup and not charged. @return completion event.
     */
    Event launchProgram(const DpuSet &set, LaunchFn program,
                        const CommandOptions &opts = {});

    /**
     * Asynchronously occupy every rank of @p set for @p seconds of
     * modeled kernel time — a bandwidth-costed launch whose duration
     * the caller computed analytically (e.g. a streaming attention
     * kernel bounded by MRAM bandwidth) instead of simulating tasklets.
     * Costed exactly like launchProgram: the host pays the launch-issue
     * overhead and moves on; each target rank is busy for @p seconds
     * starting when the issue, the rank, and the dependency allow.
     * @return completion event.
     */
    Event launchTimed(const DpuSet &set, double seconds,
                      const CommandOptions &opts = {});

    /**
     * Host-side compute of @p tasks independent tasks of
     * @p instrs_per_task instructions (the pthreads parallel-for of
     * Fig 5); occupies only the issuing tenant's host timeline,
     * overlapping in-flight launches and async transfers.
     * @return modeled seconds.
     */
    double hostCompute(uint64_t tasks, uint64_t instrs_per_task,
                       const CommandOptions &opts = {});

    /** Occupy the host for a fixed @p seconds (driver bookkeeping). */
    double hostBusy(double seconds, const CommandOptions &opts = {});

    /**
     * Idle the host until at least absolute time @p seconds on the
     * timeline (wait for an external event such as a request arrival);
     * no-op if the host is already past it.
     */
    void hostIdleUntil(double seconds, const CommandOptions &opts = {});

    // ------------------------------------------------------------------
    // Deprecated positional-tail overloads (the v1 submission API).
    // They forward to the CommandOptions form and exist only so
    // pre-CommandOptions call sites compile unchanged; new code should
    // pass CommandOptions. The `after` parameter is deliberately
    // defaultless: tail-less calls resolve to the canonical overloads.
    // ------------------------------------------------------------------

    /** @deprecated Use the CommandOptions overload. */
    double memcpy(const DpuSet &set, uint64_t bytes_per_dpu,
                  CopyDirection dir, const std::string &label)
    {
        return memcpy(set, bytes_per_dpu, dir,
                      CommandOptions{kNoEvent, label});
    }

    /** @deprecated Use the CommandOptions overload. */
    Event memcpyAsync(const DpuSet &set, uint64_t bytes_per_dpu,
                      CopyDirection dir, Event after,
                      const std::string &label = "")
    {
        return memcpyAsync(set, bytes_per_dpu, dir,
                           CommandOptions{after, label});
    }

    /** @deprecated Use the CommandOptions overload. */
    double memcpyScatter(const DpuSet &set,
                         const std::vector<uint64_t> &bytes_per_dpu,
                         CopyDirection dir, const std::string &label)
    {
        return memcpyScatter(set, bytes_per_dpu, dir,
                             CommandOptions{kNoEvent, label});
    }

    /** @deprecated Use the CommandOptions overload. */
    Event memcpyScatterAsync(const DpuSet &set,
                             std::vector<uint64_t> bytes_per_dpu,
                             CopyDirection dir, Event after,
                             const std::string &label = "")
    {
        return memcpyScatterAsync(set, std::move(bytes_per_dpu), dir,
                                  CommandOptions{after, label});
    }

    /** @deprecated Use the CommandOptions overload. */
    Event memcpyBufferedAsync(const DpuSet &set, uint64_t bytes_per_dpu,
                              CopyDirection dir, Event after,
                              const std::string &label = "")
    {
        return memcpyBufferedAsync(set, bytes_per_dpu, dir,
                                   CommandOptions{after, label});
    }

    /** @deprecated Use the CommandOptions overload. */
    Event memcpyScatterBufferedAsync(const DpuSet &set,
                                     std::vector<uint64_t> bytes_per_dpu,
                                     CopyDirection dir, Event after,
                                     const std::string &label = "")
    {
        return memcpyScatterBufferedAsync(set, std::move(bytes_per_dpu),
                                          dir,
                                          CommandOptions{after, label});
    }

    /** @deprecated Use the CommandOptions overload. */
    Event launch(const DpuSet &set, unsigned tasklets,
                 std::function<void(sim::Tasklet &, unsigned)> body,
                 Event after, const std::string &label = "")
    {
        return launch(set, tasklets, std::move(body),
                      CommandOptions{after, label});
    }

    /** @deprecated Use the CommandOptions overload. */
    Event launchProgram(const DpuSet &set,
                        std::function<void(sim::Dpu &, unsigned)> program,
                        Event after, const std::string &label = "")
    {
        return launchProgram(set, std::move(program),
                             CommandOptions{after, label});
    }

    /** @deprecated Use the CommandOptions overload. */
    Event launchTimed(const DpuSet &set, double seconds, Event after,
                      const std::string &label = "")
    {
        return launchTimed(set, seconds, CommandOptions{after, label});
    }

    /** @deprecated Use the CommandOptions overload. */
    double hostCompute(uint64_t tasks, uint64_t instrs_per_task,
                       Event after, const std::string &label = "")
    {
        return hostCompute(tasks, instrs_per_task,
                           CommandOptions{after, label});
    }

    /** @deprecated Use the CommandOptions overload. */
    double hostBusy(double seconds, Event after,
                    const std::string &label = "")
    {
        return hostBusy(seconds, CommandOptions{after, label});
    }

    /** @deprecated Use the CommandOptions overload. */
    void hostIdleUntil(double seconds, Event after,
                       const std::string &label = "")
    {
        hostIdleUntil(seconds, CommandOptions{after, label});
    }

    /**
     * Register a host-side completion callback on pending event @p e:
     * the drain that resolves @p e invokes fn(e, completion_seconds)
     * after the timeline fold. Dispatch is deterministic — due
     * callbacks run in timeline order (completion time, ties by event
     * id) regardless of registration order or worker-thread count.
     * Callbacks may enqueue follow-up commands on the queue (resolved
     * at the next drain) but must not force a drain themselves
     * (sync()/eventSeconds/blocking transfers are fatal inside one).
     * Fatal if @p e is not pending (kNoEvent, already resolved, or
     * never enqueued): register immediately after enqueuing.
     */
    void onComplete(Event e, std::function<void(Event, double)> fn);

    /**
     * Register a host-side *error* callback on pending event @p e:
     * dispatched exactly like onComplete (same deterministic timeline
     * order, same restrictions) but only if the event FAILED; an
     * onComplete callback on a failed event (and an onError callback
     * on a succeeded one) is dropped. Register both to cover both
     * outcomes.
     */
    void onError(Event e, std::function<void(Event, double)> fn);

    /**
     * Failure state of event @p e: true if the command failed (dead
     * rank, exhausted transfer retries, timeout, hang, or a failed
     * `after` dependency). Drains like eventSeconds, with the same
     * validity rules (fatal for kNoEvent / never-enqueued / compacted
     * events). Always false when no fault injector is attached.
     */
    bool eventFailed(Event e);

    /**
     * Start routing fold decisions through @p inj (nullptr detaches).
     * Drains pending commands first — already-enqueued commands
     * resolve under the previous injector (if any). The injector's
     * schedule is interpreted against this queue's timeline origin.
     */
    void attachFaultInjector(fault::FaultInjector *inj);

    /** The attached fault injector (nullptr = fault-free). */
    fault::FaultInjector *faultInjector() const { return inj_; }

    /**
     * Drain the queue and join every timeline. @return the makespan:
     * wall-clock seconds from the timeline origin until every host
     * lane, the bus, and all ranks are idle.
     */
    double sync();

    /**
     * Completion timestamp of event @p e on the timeline: drains
     * pending commands (without joining the timelines, unlike sync())
     * and returns the absolute second the command finished at — the
     * primitive completion-driven drivers (TPOT accounting, admission
     * control) are built on. Fatal for kNoEvent / never-enqueued
     * events, and for events compacted away by a sync()/resetTimeline
     * that happened after the event was enqueued: query timestamps
     * before syncing.
     */
    double eventSeconds(Event e);

    /**
     * Tenant 0's host timeline as of the last drain (sync() first for
     * a makespan that includes pending commands).
     */
    double elapsedSeconds() const { return hostT_[0]; }

    /** Tenant @p t's host timeline as of the last drain. */
    double hostSeconds(TenantId t) const;

    /** Rank @p r's timeline as of the last drain. */
    double rankReadySeconds(unsigned r) const;

    /** Bus timeline as of the last drain. */
    double busReadySeconds() const { return busT_; }

    /** Cumulative host<->PIM bytes moved by resolved copies. */
    uint64_t transferredBytes() const { return transferredBytes_; }

    /** Seconds of launch work resolved so far (sum, not makespan). */
    double launchWorkSeconds() const { return launchWork_; }

    /** Seconds of transfer work resolved so far (sum, not makespan). */
    double copyWorkSeconds() const { return copyWork_; }

    /** Seconds of host work resolved so far (sum, not makespan). */
    double hostWorkSeconds() const { return hostWork_; }

    /** Commands enqueued but not yet resolved. */
    size_t pendingCommands() const { return pending_.size(); }

    /** The system this queue executes against. */
    PimSystem &system() const { return sys_; }

    /**
     * Zero every timeline and work/traffic counter (DPU state and
     * registered tenants are kept). Pending commands are drained first
     * so simulation state stays consistent. An attached recorder is NOT
     * cleared: its trace origin advances past everything recorded so
     * far, so spans resolved after the reset land strictly later on the
     * trace timeline and pre-reset history stays readable (mirroring
     * how pre-reset Events are rebased to resolve at the new epoch's
     * origin).
     */
    void resetTimeline();

    /**
     * Start feeding per-command spans to @p rec (nullptr detaches).
     * Drains pending commands first — already-enqueued commands resolve
     * under the previous recorder (if any) — and restarts the trace
     * origin at zero.
     */
    void attachRecorder(trace::Recorder *rec);

    /** The attached recorder (nullptr when tracing is off). */
    trace::Recorder *recorder() const { return rec_; }

    /**
     * Start feeding metrics to @p met (nullptr detaches). Drains
     * pending commands first — already-enqueued commands resolve under
     * the previous registry (if any). The fold then maintains, per
     * tenant, the commands issued/resolved/failed, delivered bus
     * bytes, transfer retries, and poisoned dependencies as counters,
     * and drives the registry's TimelineSampler with bus/host/per-rank
     * utilization, busy-rank averages (global and per tenant), and the
     * in-flight command depth — all in *simulated* time from the
     * sequential fold, so every metric is bit-identical for any
     * worker-thread count. With no registry attached the cost is one
     * pointer test per command (the same contract as attachRecorder).
     */
    void attachMetrics(telemetry::Registry *met);

    /** The attached metrics registry (nullptr when metrics are off). */
    telemetry::Registry *metricsRegistry() const { return met_; }

  private:
    /** "Not in an arena" sentinel for Command offsets below. */
    static constexpr size_t kNoArena = ~static_cast<size_t>(0);

    struct Command
    {
        enum class Type { Launch, Copy, HostCompute };

        Type type;
        Event after = kNoEvent;
        /** Host issue timeline the command runs on. */
        TenantId tenant = kDefaultTenant;
        /** Trace span name; empty = the command-kind default. Only
         *  populated while a recorder is attached. */
        std::string label;
        /** Copy direction (trace naming only; the cost is symmetric). */
        CopyDirection dir = CopyDirection::HostToPim;

        // Launch
        LaunchFn program;
        /** >= 0: analytic launch duration (launchTimed); no program. */
        double launchSeconds = -1.0;
        // Copy
        uint64_t totalBytes = 0;
        double copySeconds = 0.0;
        bool blocking = false;
        /** False for double-buffered copies: the transfer holds the bus
         *  but leaves the target ranks' compute timeline untouched. */
        bool occupyRanks = true;
        // HostCompute
        double hostSeconds = 0.0;
        /** >= 0: idle the host until this absolute time instead. */
        double hostUntil = -1.0;

        /** Target ranks/slots of a Launch or Copy: the memoized
         *  slot→rank partition of the addressed DpuSet, borrowed by
         *  shared_ptr — commands on the same set (every full-system
         *  command in particular) share one instance instead of each
         *  copying rank and slot vectors. */
        std::shared_ptr<const SlotPartition> part;
        /** Per-slot launch makespans live in the queue's drain arena
         *  at [cyclesOff, cyclesOff + part->slots.size()); filled in
         *  phase 1 (Launch with a program only). */
        size_t cyclesOff = 0;
        /** Per-slot simulation-event counts in the events arena;
         *  kNoArena unless a metrics registry was attached at enqueue,
         *  so the phase-1 check needs no met_ read. */
        size_t eventsOff = kNoArena;

        /** Completion time, filled at drain. */
        double end = 0.0;
    };

    /** One (command, slot-position) link of a per-slot phase-1 chain:
     *  the position of the slot inside cmd->part->slots is recorded at
     *  chain build, so workers index the arenas directly instead of
     *  re-deriving it by binary search per (command, slot). */
    struct ChainEntry
    {
        Command *cmd;
        unsigned pos;
    };

    Event enqueue(Command cmd);
    Event enqueueScatter(const DpuSet &set,
                         const std::vector<uint64_t> &bytes_per_dpu,
                         CopyDirection dir, const CommandOptions &opts,
                         bool occupy_ranks);
    double copyDuration(const DpuSet &set, uint64_t total_bytes) const;
    Command makeCopy(const DpuSet &set, uint64_t total_bytes,
                     bool blocking, const CommandOptions &opts,
                     CopyDirection dir) const;
    /** Execute pending launch bodies and fold every pending command
     *  into the timelines, in enqueue order; then dispatch due
     *  completion callbacks in timeline order. */
    void drain();

    /** The joined time of all timelines (no drain). */
    double joinedTime() const;

    /** Completion time of event @p e (0.0 for compacted history). */
    double eventTime(Event e) const;

    /** Failure state of resolved event @p e (false for compacted
     *  history: sync() is a recovery barrier). */
    bool eventFailedInternal(Event e) const;

    /** Emit the one-off zero-width rank-death marker span. */
    void traceRankDeath(unsigned r, double failAtSec);

    /** Trace lane of tenant @p t's host timeline. */
    int hostLane(TenantId t) const;

    /** The tenant's display name for span tagging ("" for tenant 0). */
    const std::string &tenantTag(TenantId t) const
    {
        return tenantNames_[t];
    }

    PimSystem &sys_;
    std::vector<Command> pending_;
    /**
     * Completion times of resolved commands, indexed by
     * Event - resolvedBase_. Compacted at every sync(): once all
     * timelines are joined, the host time dominates every earlier
     * completion, so the history collapses to the base offset and the
     * queue's memory stays bounded no matter how many commands ran.
     */
    std::vector<double> resolved_;
    /** Failure flags parallel to resolved_ (same indexing/compaction).
     *  Stays all-zero with no injector attached. */
    std::vector<uint8_t> resolvedFailed_;
    size_t resolvedBase_ = 0;
    /** Host issue timelines, one per tenant (index = TenantId). */
    std::vector<double> hostT_{0.0};
    /** Tenant display names; tenant 0's is empty (untagged spans). */
    std::vector<std::string> tenantNames_{std::string()};
    double busT_ = 0.0;
    std::vector<double> rankT_;
    uint64_t transferredBytes_ = 0;
    double launchWork_ = 0.0;
    double copyWork_ = 0.0;
    double hostWork_ = 0.0;
    /** One registered completion/error callback on a pending event. */
    struct Callback
    {
        Event event;
        /** True for onError registrations: fire only on failure. */
        bool onErr;
        std::function<void(Event, double)> fn;
    };
    /** Registered completion/error callbacks (pending events only). */
    std::vector<Callback> callbacks_;
    /** True while completion callbacks run (drain re-entry guard). */
    bool inCallbacks_ = false;
    /** Metrics cached per tenant while a registry is attached:
     *  suffixed counters (named tenants only; tenant 0 owns the plain
     *  totals) and the tenant's sampler series ids. */
    struct TenantMetrics
    {
        telemetry::Counter *issued = nullptr;
        telemetry::Counter *resolved = nullptr;
        telemetry::Counter *failed = nullptr;
        telemetry::Counter *poisoned = nullptr;
        telemetry::Counter *busBytes = nullptr;
        telemetry::Counter *retries = nullptr;
        /** "util:host" (tenant 0) / "util:host:<name>". */
        int hostSid = -1;
        /** "ranks_busy:<name>" (avg busy ranks of this tenant). */
        int ranksBusySid = -1;
    };

    /** Queue-wide counters cached while a registry is attached. */
    struct QueueCounters
    {
        telemetry::Counter *issued = nullptr;
        telemetry::Counter *resolved = nullptr;
        telemetry::Counter *failed = nullptr;
        telemetry::Counter *poisoned = nullptr;
        telemetry::Counter *busBytes = nullptr;
        telemetry::Counter *retries = nullptr;
        telemetry::Counter *simEvents = nullptr;
        /** Host-wall drain gauges (Registry::hostGauge — exported but
         *  excluded from the deterministic snapshot). */
        telemetry::Gauge *drainPhase1 = nullptr;
        telemetry::Gauge *drainPhase2 = nullptr;
        telemetry::Gauge *drainCps = nullptr;
    };

    /** Extend tenantMet_ to cover every registered tenant. */
    void ensureTenantMetrics();

    /** Span sink; nullptr = tracing off. */
    trace::Recorder *rec_ = nullptr;
    /** Metrics sink; nullptr = metrics off. */
    telemetry::Registry *met_ = nullptr;
    QueueCounters qm_{};
    std::vector<TenantMetrics> tenantMet_;
    /** Sampler series ids (valid while met_ != nullptr). */
    int busSid_ = -1;
    int depthSid_ = -1;
    int ranksBusySid_ = -1;
    std::vector<int> rankSid_;
    /** Fault source; nullptr = fault-free fold. */
    fault::FaultInjector *inj_ = nullptr;
    /** Ranks whose death marker span was already emitted. */
    std::vector<bool> rankDeathTraced_;
    /** Trace-time origin of the current timeline epoch: resetTimeline
     *  advances it so post-reset spans never overlap pre-reset ones. */
    double traceEpoch_ = 0.0;

    // ------------------------------------------------------------------
    // Drain machinery. Everything below is scratch reused across
    // drains (capacity survives clear()) so a steady stream of small
    // drains allocates nothing.
    // ------------------------------------------------------------------

    /** This queue's drain scheduling mode. */
    DrainMode drainMode_;
    /** Cumulative host-wall drain cost (see drainStats()). */
    DrainStats stats_;
    /** Per-slot ordered launch chains, indexed by sample slot; only
     *  the slots in activeSlots_ are populated (and cleared at the
     *  next drain), so a drain touches O(active) chain vectors, not
     *  O(sampleCount). */
    std::vector<std::vector<ChainEntry>> chains_;
    /** Sample slots with a non-empty chain this drain, ascending. */
    std::vector<unsigned> activeSlots_;
    /** Per-slot launch makespans of the current drain: one span per
     *  launch command (see Command::cyclesOff), written by phase-1
     *  workers at disjoint offsets, read by the fold. */
    std::vector<uint64_t> slotCyclesArena_;
    /** Per-slot simulation-event counts (metrics attached only). */
    std::vector<uint64_t> slotEventsArena_;
    /** Pipelined mode: per-command count of slots whose chain entry
     *  has not executed yet, indexed by position in pending_. A
     *  worker's release-decrement to zero publishes the command's
     *  arena spans; the fold's acquire-load pairs with it. Separately
     *  allocated (atomics are not movable) and reused across drains. */
    std::unique_ptr<std::atomic<uint32_t>[]> remaining_;
    size_t remainingCap_ = 0;
    /** Wakes the fold when the next unready command's count hits 0. */
    std::mutex drainMutex_;
    std::condition_variable drainCv_;
};

} // namespace pim::core

#endif // PIM_CORE_COMMAND_QUEUE_HH
