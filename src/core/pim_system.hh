/**
 * @file
 * The rank-aware PIM system the command-queue runtime executes against.
 *
 * A PimSystem owns the (sampled) sim::Dpu instances of a logical system
 * of `numDpus` DPUs grouped into ranks of `dpusPerRank` (UPMEM: 64 DPUs
 * per DIMM rank). Commands — transfers, launches, host compute — are
 * addressed to a DpuSet: the whole system, one rank, or an explicit
 * subset of global DPU indices. Like real UPMEM hosts, experiments can
 * thus launch work on a subset of ranks while other ranks are busy or
 * being fed data.
 *
 * Memory realism vs scale: only `sampleDpus` DPU instances are
 * materialized (bank-level DPUs share no state, and the paper's
 * workloads shard near-uniformly), spread across the global index space
 * by sampleGlobalIndex() so index-dependent sharding stays
 * representative. `numDpus` still drives transfer bandwidth and
 * aggregate statistics.
 */

#ifndef PIM_CORE_PIM_SYSTEM_HH
#define PIM_CORE_PIM_SYSTEM_HH

#include <memory>
#include <utility>
#include <vector>

#include "core/parallel_engine.hh"
#include "sim/config.hh"
#include "sim/dpu.hh"
#include "sim/host_model.hh"
#include "sim/transfer_model.hh"

namespace pim::core {

/** System-wide configuration of the runtime. */
struct PimSystemConfig
{
    /** Logical system size. */
    unsigned numDpus = 512;
    /** DPU instances actually materialized (0 = all). */
    unsigned sampleDpus = 0;
    /**
     * Materialize the first DPU of every rank instead of spreading
     * `sampleDpus` over the index space — for rank-granular experiments
     * (e.g. the overlapped design space) where every rank must have a
     * representative member regardless of how numDpus divides.
     */
    bool samplePerRank = false;
    /** DPUs per rank (UPMEM: 64 per DIMM rank). */
    unsigned dpusPerRank = 64;
    /** DPU hardware parameters. */
    sim::DpuConfig dpuCfg{};
    /** Host CPU model (hostCompute commands). */
    sim::HostConfig hostCfg{};
    /** Host<->PIM transfer model (memcpy commands, launch overhead). */
    sim::TransferConfig xferCfg{};
    /** Host worker threads simulating DPUs (0 = PIM_SIM_THREADS env,
     *  else hardware concurrency). Results are thread-count invariant. */
    unsigned simThreads = 0;
};

/**
 * Configuration of a one-DPU system (single-DPU microbenchmarks and
 * examples): one materialized DPU, no worker-thread fan-out.
 */
PimSystemConfig singleDpuConfig(const sim::DpuConfig &dpu_cfg = {});

/**
 * Global DPU index represented by sample slot @p slot when @p sample of
 * @p num_dpus DPUs are materialized. Spreads the sample evenly across
 * the whole index space — including a non-divisible tail — via
 * floor(slot * num_dpus / sample); identical to the historical
 * slot * (num_dpus / sample) stride whenever sample divides num_dpus.
 */
unsigned sampleGlobalIndex(unsigned slot, unsigned sample,
                           unsigned num_dpus);

class PimSystem;

/**
 * Slot→rank partition of a DpuSet, memoized per set and shared (by
 * shared_ptr) with every command enqueued against it. Slots are sorted
 * ascending and globalIndex() is strictly increasing with rankOf()
 * monotone, so a set's sample slots group into one contiguous run per
 * touched rank: the run of ranks[i] is slots[rankSlotBegin[i] ..
 * rankSlotBegin[i+1]) (empty for a touched rank with no materialized
 * member). The command queue's timeline fold walks the runs in one
 * O(slots + ranks) pass instead of rescanning every slot per rank.
 */
struct SlotPartition
{
    /** Rank ids the set touches, ascending (== DpuSet::ranks()). */
    std::vector<unsigned> ranks;
    /** Materialized sample slots, ascending (== DpuSet::slots()). */
    std::vector<unsigned> slots;
    /** Run offsets into slots, one per rank plus the end sentinel. */
    std::vector<unsigned> rankSlotBegin;
};

/** A selection of DPUs a command is addressed to. */
class DpuSet
{
  public:
    /** Logical number of DPUs addressed (drives transfer bandwidth). */
    unsigned size() const { return size_; }

    /** True if global DPU index @p global is a member. */
    bool contains(unsigned global) const;

    /**
     * Position of member @p global within the set, counting members in
     * ascending global order — the dense zero-based id workloads shard
     * by when they run on a partition instead of the whole system.
     * Fatal if @p global is not a member.
     */
    unsigned indexOf(unsigned global) const;

    /** Global index of the set's @p idx-th member (ascending order);
     *  the inverse of indexOf. Fatal if idx >= size(). */
    unsigned memberAt(unsigned idx) const;

    /**
     * Split this set's ranks into a leading partition of roughly
     * @p fraction of them and the rest — partitionRanks relative to an
     * owned rank set instead of the whole system (what a tenant does
     * with the ranks a RankScheduler granted it). Requires a
     * rank-granular set (All/Rank/Ranks) with at least two ranks; the
     * first member holds the k lowest rank ids with
     * k = round(fraction * ranks) clamped to [1, ranks - 1], so both
     * halves are always non-empty.
     */
    std::pair<DpuSet, DpuSet> partitionRanks(double fraction) const;

    /** Rank ids the set touches, ascending. */
    const std::vector<unsigned> &ranks() const { return ranks_; }

    /** Materialized sample slots belonging to the set, ascending. */
    const std::vector<unsigned> &slots() const { return slots_; }

    /**
     * The set's slot→rank partition, built on first use and memoized
     * (copies of the set share the memo). The canonical full-system set
     * returns the PimSystem's one cached instance, so every full-set
     * command of a run borrows the same partition instead of copying
     * rank/slot vectors.
     */
    const std::shared_ptr<const SlotPartition> &partition() const;

    /** Owning system. */
    const PimSystem &system() const { return *sys_; }

    /**
     * Every DPU of the system that is NOT in this set — the natural way
     * to split a system between two concurrent workloads (prefill ranks
     * vs decode ranks) without hand-rolling index lists. Rank-granular
     * sets complement to rank-granular sets (membership stays implicit,
     * so the cost is O(ranks), not O(DPUs)); explicit sets complement to
     * explicit sets. Fatal if the complement is empty (the set covers
     * the whole system).
     */
    DpuSet complement() const;

  private:
    friend class PimSystem;

    enum class Kind { All, Rank, Ranks, Explicit };

    DpuSet(const PimSystem *sys, Kind kind, unsigned rank,
           std::vector<unsigned> members);

    const PimSystem *sys_;
    Kind kind_;
    unsigned rank_ = 0; ///< Kind::Rank only
    /** Kind::Explicit: sorted global DPU indices.
     *  Kind::Ranks: sorted rank ids. */
    std::vector<unsigned> members_;
    unsigned size_ = 0;
    std::vector<unsigned> ranks_;
    std::vector<unsigned> slots_;
    /** Lazily built partition (see partition()); mutable because the
     *  memo does not change the set's observable membership. */
    mutable std::shared_ptr<const SlotPartition> part_;
};

/** The DPU set a command queue executes against. */
class PimSystem
{
  public:
    explicit PimSystem(const PimSystemConfig &cfg);

    const PimSystemConfig &config() const { return cfg_; }

    /** Logical system size. */
    unsigned numDpus() const { return cfg_.numDpus; }

    /** Number of ranks (ceil(numDpus / dpusPerRank)). */
    unsigned numRanks() const { return numRanks_; }

    /** DPUs in rank @p r (the last rank may be ragged). */
    unsigned rankSize(unsigned r) const;

    /** Rank owning global DPU index @p global. */
    unsigned rankOf(unsigned global) const;

    /** Number of materialized DPU instances. */
    unsigned sampleCount() const
    {
        return static_cast<unsigned>(dpus_.size());
    }

    /** Materialized DPU of sample slot @p slot. */
    sim::Dpu &dpu(unsigned slot);

    /** Global DPU index represented by sample slot @p slot. */
    unsigned globalIndex(unsigned slot) const;

    /**
     * Sample slot materializing global index @p global; fatal if that
     * index is not part of the sample (see DpuSet::slots for membership
     * queries).
     */
    unsigned slotOf(unsigned global) const;

    /** The whole system. */
    DpuSet all() const;

    /** One rank. */
    DpuSet rank(unsigned r) const;

    /** An explicit set of global DPU indices (deduplicated, sorted). */
    DpuSet subset(std::vector<unsigned> globals) const;

    /** The DPUs of ranks [@p first, @p first + @p count). */
    DpuSet rankRange(unsigned first, unsigned count) const;

    /** The DPUs of an arbitrary set of ranks (deduplicated, sorted). */
    DpuSet ranks(std::vector<unsigned> rank_ids) const;

    /**
     * Split the system's ranks into a leading partition of roughly
     * @p fraction of the ranks and its complement — the standard
     * prefill/decode split of disaggregated serving. The first member
     * holds ranks [0, k) with k = round(fraction * numRanks) clamped to
     * [1, numRanks - 1], so both partitions are always non-empty; fatal
     * on a single-rank system.
     */
    std::pair<DpuSet, DpuSet> partitionRanks(double fraction) const;

    /**
     * The cached slot→rank partition of the full system — the one
     * instance every all()-set command shares (see DpuSet::partition).
     * Built lazily on first use.
     */
    const std::shared_ptr<const SlotPartition> &allPartition() const;

    /** Shared host thread pool commands execute on. */
    const ParallelDpuEngine &engine() const { return engine_; }

    /** Host<->PIM transfer cost model. */
    const sim::TransferModel &transferModel() const { return xfer_; }

    /** Host compute cost model. */
    const sim::HostModel &hostModel() const { return host_; }

  private:
    PimSystemConfig cfg_;
    unsigned numRanks_;
    sim::HostModel host_;
    sim::TransferModel xfer_;
    ParallelDpuEngine engine_;
    std::vector<std::unique_ptr<sim::Dpu>> dpus_;
    /** Lazily built full-system partition (see allPartition()). */
    mutable std::shared_ptr<const SlotPartition> allPart_;
};

} // namespace pim::core

#endif // PIM_CORE_PIM_SYSTEM_HH
