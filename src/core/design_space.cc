#include "core/design_space.hh"

#include "alloc/buddy_tree.hh"
#include "alloc/cost_model.hh"
#include "alloc/metadata_store.hh"
#include "sim/dpu.hh"
#include "util/logging.hh"

namespace pim::core {

const char *
designStrategyName(DesignStrategy s)
{
    switch (s) {
      case DesignStrategy::HostMetaHostExec:
        return "Host-Metadata/Host-Executed";
      case DesignStrategy::HostMetaPimExec:
        return "Host-Metadata/PIM-Executed";
      case DesignStrategy::PimMetaHostExec:
        return "PIM-Metadata/Host-Executed";
      case DesignStrategy::PimMetaPimExec:
        return "PIM-Metadata/PIM-Executed";
    }
    return "?";
}

uint64_t
metadataBytesPerDpu(const alloc::StrawManConfig &cfg)
{
    const uint32_t nodes =
        alloc::BuddyTree::nodesFor(cfg.heapBytes, cfg.minBlock);
    return (static_cast<uint64_t>(nodes) + 15) / 16 * 4; // 2 bits/node
}

namespace {

/**
 * Simulate the PIM-executed buddy allocator on one representative DPU
 * (all DPUs run the identical program, so one is exact) and return the
 * makespan in seconds.
 */
double
pimExecutedSeconds(const DesignSpaceParams &p)
{
    sim::Dpu dpu(p.dpuCfg);
    alloc::StrawManAllocator allocator(dpu, p.allocCfg);
    const unsigned allocs_per_tasklet =
        p.allocsPerDpu / p.taskletsPerDpu;
    dpu.run(1, [&](sim::Tasklet &t) { allocator.init(t); });
    dpu.run(p.taskletsPerDpu, [&](sim::Tasklet &t) {
        for (unsigned i = 0; i < allocs_per_tasklet; ++i) {
            const auto addr = allocator.malloc(t, p.allocSize);
            PIM_ASSERT(addr != sim::kNullAddr,
                       "design-space experiment ran out of heap");
        }
    });
    return dpu.lastElapsedSeconds();
}

/** Host-side buddy execution time for all DPUs' requests. */
double
hostExecutedSeconds(const DesignSpaceParams &p)
{
    const uint32_t nodes =
        alloc::BuddyTree::nodesFor(p.allocCfg.heapBytes, p.allocCfg.minBlock);
    // levels = log2(nodes+1)
    uint32_t levels = 0;
    while ((1u << (levels + 1)) - 1 <= nodes)
        ++levels;
    const uint64_t instrs_per_alloc = alloc::cost::kHostAllocOverheadInstrs
        + static_cast<uint64_t>(levels) * alloc::cost::kHostInstrsPerLevel;
    const sim::HostModel host(p.hostCfg);
    // Each allocation round services one request per DPU, parallelized
    // across host worker threads; rounds are serial (the PIM program
    // consumes pointers round by round).
    const double per_round =
        host.seconds(p.numDpus, instrs_per_alloc)
        + static_cast<double>(p.numDpus) * p.driverCallSec
            / p.hostCfg.threads;
    return per_round * p.allocsPerDpu;
}

} // namespace

DesignSpaceResult
evalStrategy(DesignStrategy s, const DesignSpaceParams &p)
{
    DesignSpaceResult r;
    r.strategy = s;

    const sim::TransferModel xfer(p.xferCfg);
    const uint64_t meta_bytes = metadataBytesPerDpu(p.allocCfg);
    const uint64_t ptr_bytes = 8; // one returned pointer per round

    switch (s) {
      case DesignStrategy::PimMetaPimExec:
        // Metadata local, execution local: one kernel launch, no
        // steady-state transfers.
        r.computeSeconds = pimExecutedSeconds(p);
        r.transferSeconds = p.xferCfg.launchLatencySec;
        break;

      case DesignStrategy::HostMetaPimExec:
        // The authoritative metadata lives in host DRAM: every
        // allocation round ships it to the PIM side before the launch
        // and back after (Fig 5(b)).
        r.computeSeconds = pimExecutedSeconds(p);
        r.transferSeconds = 2.0 * p.allocsPerDpu
            * xfer.seconds(meta_bytes, p.numDpus);
        break;

      case DesignStrategy::PimMetaHostExec:
        // Metadata lives in each PIM bank but the host executes the
        // algorithm: per round, pull metadata up, push updated metadata
        // and the returned pointers down (Fig 5(c)).
        r.computeSeconds = hostExecutedSeconds(p);
        r.transferSeconds = p.allocsPerDpu
            * (2.0 * xfer.seconds(meta_bytes, p.numDpus)
               + xfer.seconds(ptr_bytes, p.numDpus));
        break;

      case DesignStrategy::HostMetaHostExec:
        // Everything host-side except the returned pointers, which must
        // reach the PIM cores each round (Fig 5(a)).
        r.computeSeconds = hostExecutedSeconds(p);
        r.transferSeconds = p.allocsPerDpu
            * xfer.seconds(ptr_bytes, p.numDpus);
        break;
    }
    return r;
}

} // namespace pim::core
