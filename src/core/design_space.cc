#include "core/design_space.hh"

#include <memory>
#include <vector>

#include "alloc/buddy_tree.hh"
#include "alloc/cost_model.hh"
#include "alloc/metadata_store.hh"
#include "core/command_queue.hh"
#include "core/pim_system.hh"
#include "sim/dpu.hh"
#include "util/logging.hh"

namespace pim::core {

const char *
designStrategyName(DesignStrategy s)
{
    switch (s) {
      case DesignStrategy::HostMetaHostExec:
        return "Host-Metadata/Host-Executed";
      case DesignStrategy::HostMetaPimExec:
        return "Host-Metadata/PIM-Executed";
      case DesignStrategy::PimMetaHostExec:
        return "PIM-Metadata/Host-Executed";
      case DesignStrategy::PimMetaPimExec:
        return "PIM-Metadata/PIM-Executed";
    }
    return "?";
}

uint64_t
metadataBytesPerDpu(const alloc::StrawManConfig &cfg)
{
    const uint32_t nodes =
        alloc::BuddyTree::nodesFor(cfg.heapBytes, cfg.minBlock);
    return (static_cast<uint64_t>(nodes) + 15) / 16 * 4; // 2 bits/node
}

namespace {

/** Host instructions to run the buddy algorithm for one allocation. */
uint64_t
hostInstrsPerAlloc(const DesignSpaceParams &p)
{
    const uint32_t nodes =
        alloc::BuddyTree::nodesFor(p.allocCfg.heapBytes, p.allocCfg.minBlock);
    // levels = log2(nodes+1)
    uint32_t levels = 0;
    while ((1u << (levels + 1)) - 1 <= nodes)
        ++levels;
    return alloc::cost::kHostAllocOverheadInstrs
        + static_cast<uint64_t>(levels) * alloc::cost::kHostInstrsPerLevel;
}

/**
 * Simulate the PIM-executed buddy allocator on one representative DPU
 * (all DPUs run the identical program, so one is exact) and return the
 * makespan in seconds.
 */
double
pimExecutedSeconds(const DesignSpaceParams &p)
{
    sim::Dpu dpu(p.dpuCfg);
    alloc::StrawManAllocator allocator(dpu, p.allocCfg);
    const unsigned allocs_per_tasklet =
        p.allocsPerDpu / p.taskletsPerDpu;
    dpu.run(1, [&](sim::Tasklet &t) { allocator.init(t); });
    dpu.run(p.taskletsPerDpu, [&](sim::Tasklet &t) {
        for (unsigned i = 0; i < allocs_per_tasklet; ++i) {
            const auto addr = allocator.malloc(t, p.allocSize);
            PIM_ASSERT(addr != sim::kNullAddr,
                       "design-space experiment ran out of heap");
        }
    });
    return dpu.lastElapsedSeconds();
}

/** Host-side buddy execution time for all DPUs' requests. */
double
hostExecutedSeconds(const DesignSpaceParams &p)
{
    const uint64_t instrs_per_alloc = hostInstrsPerAlloc(p);
    const sim::HostModel host(p.hostCfg);
    // Each allocation round services one request per DPU, parallelized
    // across host worker threads; rounds are serial (the PIM program
    // consumes pointers round by round).
    const double per_round =
        host.seconds(p.numDpus, instrs_per_alloc)
        + static_cast<double>(p.numDpus) * p.driverCallSec
            / p.hostCfg.threads;
    return per_round * p.allocsPerDpu;
}

DesignSpaceResult
evalSerial(DesignStrategy s, const DesignSpaceParams &p)
{
    DesignSpaceResult r;
    r.strategy = s;
    r.mode = ExecutionMode::Serial;

    const sim::TransferModel xfer(p.xferCfg);
    const uint64_t meta_bytes = metadataBytesPerDpu(p.allocCfg);
    const uint64_t ptr_bytes = 8; // one returned pointer per round

    switch (s) {
      case DesignStrategy::PimMetaPimExec:
        // Metadata local, execution local: one kernel launch, no
        // steady-state transfers.
        r.computeSeconds = pimExecutedSeconds(p);
        r.transferSeconds = p.xferCfg.launchLatencySec;
        break;

      case DesignStrategy::HostMetaPimExec:
        // The authoritative metadata lives in host DRAM: every
        // allocation round ships it to the PIM side before the launch
        // and back after (Fig 5(b)).
        r.computeSeconds = pimExecutedSeconds(p);
        r.transferSeconds = 2.0 * p.allocsPerDpu
            * xfer.seconds(meta_bytes, p.numDpus);
        break;

      case DesignStrategy::PimMetaHostExec:
        // Metadata lives in each PIM bank but the host executes the
        // algorithm: per round, pull metadata up, push updated metadata
        // and the returned pointers down (Fig 5(c)).
        r.computeSeconds = hostExecutedSeconds(p);
        r.transferSeconds = p.allocsPerDpu
            * (2.0 * xfer.seconds(meta_bytes, p.numDpus)
               + xfer.seconds(ptr_bytes, p.numDpus));
        break;

      case DesignStrategy::HostMetaHostExec:
        // Everything host-side except the returned pointers, which must
        // reach the PIM cores each round (Fig 5(a)).
        r.computeSeconds = hostExecutedSeconds(p);
        r.transferSeconds = p.allocsPerDpu
            * xfer.seconds(ptr_bytes, p.numDpus);
        break;
    }
    r.makespanSeconds = r.computeSeconds + r.transferSeconds;
    return r;
}

/**
 * Replay the same pseudo-program on the command-queue runtime at rank
 * granularity: round-by-round data movement and compute are issued per
 * rank, so the bus feeds one rank while other ranks execute and the
 * host computes ahead — the makespan is the joined max-of-timelines.
 */
DesignSpaceResult
evalOverlapped(DesignStrategy s, const DesignSpaceParams &p)
{
    DesignSpaceResult r;
    r.strategy = s;
    r.mode = ExecutionMode::Overlapped;

    const bool pim_executed = s == DesignStrategy::PimMetaPimExec
        || s == DesignStrategy::HostMetaPimExec;

    PimSystemConfig scfg;
    scfg.numDpus = p.numDpus;
    scfg.dpusPerRank = p.dpusPerRank;
    scfg.dpuCfg = p.dpuCfg;
    scfg.hostCfg = p.hostCfg;
    scfg.xferCfg = p.xferCfg;
    scfg.simThreads = p.simThreads;
    // One representative DPU per rank (exact for the uniform Fig 6
    // program, and guaranteed per-rank coverage however numDpus
    // divides); host-executed strategies never launch, so one suffices.
    if (pim_executed)
        scfg.samplePerRank = true;
    else
        scfg.sampleDpus = 1;
    PimSystem sys(scfg);
    CommandQueue q(sys);

    const uint64_t meta_bytes = metadataBytesPerDpu(p.allocCfg);
    const uint64_t ptr_bytes = 8;

    // PIM-executed strategies materialize one representative DPU per
    // rank (identical programs, so one per rank is exact) and build a
    // persistent allocator on each.
    std::vector<std::unique_ptr<alloc::StrawManAllocator>> allocators;
    if (pim_executed) {
        allocators.resize(sys.sampleCount());
        for (unsigned slot = 0; slot < sys.sampleCount(); ++slot) {
            allocators[slot] = std::make_unique<alloc::StrawManAllocator>(
                sys.dpu(slot), p.allocCfg);
        }
        q.launch(sys.all(), 1, [&](sim::Tasklet &t, unsigned global) {
            allocators[sys.slotOf(global)]->init(t);
        });
        q.sync();
        q.resetTimeline(); // initAllocator is untimed, as in Serial
    }

    // Trace/meter only the measured phase: attaching after the untimed
    // init (and its timeline reset) starts both at t = 0.
    if (p.recorder != nullptr)
        q.attachRecorder(p.recorder);
    if (p.metrics != nullptr)
        q.attachMetrics(p.metrics);

    auto allocOnce = [&](sim::Tasklet &t, unsigned global) {
        const auto addr =
            allocators[sys.slotOf(global)]->malloc(t, p.allocSize);
        PIM_ASSERT(addr != sim::kNullAddr,
                   "design-space experiment ran out of heap");
    };

    switch (s) {
      case DesignStrategy::PimMetaPimExec: {
        // One launch runs every round on-device; nothing to pipeline.
        const unsigned per_tasklet = p.allocsPerDpu / p.taskletsPerDpu;
        q.launch(sys.all(), p.taskletsPerDpu,
                 [&, per_tasklet](sim::Tasklet &t, unsigned global) {
                     for (unsigned i = 0; i < per_tasklet; ++i)
                         allocOnce(t, global);
                 },
                 {.label = "alloc rounds"});
        break;
      }

      case DesignStrategy::HostMetaPimExec: {
        // Fig 5(b), pipelined: the bus ships rank k's metadata while
        // rank j executes its round. One round per allocation with a
        // metadata sync each way, exactly like the Serial cost model —
        // the comparison isolates pipelining, not transfer batching.
        for (unsigned round = 0; round < p.allocsPerDpu; ++round) {
            for (unsigned k = 0; k < sys.numRanks(); ++k) {
                const DpuSet target = sys.rank(k);
                q.memcpyAsync(target, meta_bytes,
                              CopyDirection::HostToPim,
                              {.label = "meta:h2p"});
                q.launch(target, 1, allocOnce, {.label = "alloc"});
                q.memcpyAsync(target, meta_bytes,
                              CopyDirection::PimToHost,
                              {.label = "meta:p2h"});
            }
        }
        break;
      }

      case DesignStrategy::PimMetaHostExec: {
        // Fig 5(c), pipelined: pull rank k's metadata, run the buddy
        // code on the host, push metadata + pointers back — while the
        // bus serves rank k, the host computes for rank k-1.
        const uint64_t instrs = hostInstrsPerAlloc(p);
        for (unsigned round = 0; round < p.allocsPerDpu; ++round) {
            for (unsigned k = 0; k < sys.numRanks(); ++k) {
                const DpuSet target = sys.rank(k);
                const Event up = q.memcpyAsync(
                    target, meta_bytes, CopyDirection::PimToHost,
                    {.label = "meta:p2h"});
                q.hostCompute(sys.rankSize(k), instrs,
                              {.after = up, .label = "buddy"});
                q.hostBusy(static_cast<double>(sys.rankSize(k))
                               * p.driverCallSec / p.hostCfg.threads,
                           {.label = "driver"});
                q.memcpyAsync(target, meta_bytes,
                              CopyDirection::HostToPim,
                              {.label = "meta:h2p"});
                q.memcpyAsync(target, ptr_bytes,
                              CopyDirection::HostToPim,
                              {.label = "ptrs:h2p"});
            }
        }
        break;
      }

      case DesignStrategy::HostMetaHostExec: {
        // Fig 5(a), pipelined: host computes rank k+1's round while the
        // bus delivers rank k's pointers.
        const uint64_t instrs = hostInstrsPerAlloc(p);
        for (unsigned round = 0; round < p.allocsPerDpu; ++round) {
            for (unsigned k = 0; k < sys.numRanks(); ++k) {
                q.hostCompute(sys.rankSize(k), instrs,
                              {.label = "buddy"});
                q.hostBusy(static_cast<double>(sys.rankSize(k))
                               * p.driverCallSec / p.hostCfg.threads,
                           {.label = "driver"});
                q.memcpyAsync(sys.rank(k), ptr_bytes,
                              CopyDirection::HostToPim,
                              {.label = "ptrs:h2p"});
            }
        }
        break;
      }
    }

    r.makespanSeconds = q.sync();
    r.computeSeconds = q.launchWorkSeconds() + q.hostWorkSeconds();
    r.transferSeconds = q.copyWorkSeconds();
    return r;
}

} // namespace

DesignSpaceResult
evalStrategy(DesignStrategy s, const DesignSpaceParams &p,
             ExecutionMode mode)
{
    return mode == ExecutionMode::Serial ? evalSerial(s, p)
                                         : evalOverlapped(s, p);
}

} // namespace pim::core
