#include "core/rank_scheduler.hh"

#include "telemetry/registry.hh"
#include "util/logging.hh"

namespace pim::core {

RankScheduler::RankScheduler(const PimSystem &sys)
    : sys_(sys), owner_(sys.numRanks()), quarantined_(sys.numRanks(), false)
{
}

void
RankScheduler::attachMetrics(telemetry::Registry *met)
{
    met_ = met;
    if (met_ != nullptr)
        met_->gauge("ranks.free").set(freeRankCount());
}

std::optional<DpuSet>
RankScheduler::tryAcquireRanks(unsigned n, const std::string &tenant)
{
    PIM_ASSERT(!tenant.empty(), "rank acquisition needs a tenant name");
    PIM_ASSERT(n >= 1, "cannot acquire zero ranks");
    std::vector<unsigned> grant;
    grant.reserve(n);
    for (unsigned r = 0; r < owner_.size() && grant.size() < n; ++r) {
        if (owner_[r].empty() && !quarantined_[r])
            grant.push_back(r);
    }
    if (grant.size() < n)
        return std::nullopt;
    for (const unsigned r : grant)
        owner_[r] = tenant;
    if (met_ != nullptr) {
        met_->counter("ranks.grants").add();
        met_->counter("ranks.granted_ranks").add(grant.size());
        met_->gauge("ranks.free").set(freeRankCount());
    }
    return sys_.ranks(std::move(grant));
}

DpuSet
RankScheduler::acquireRanks(unsigned n, const std::string &tenant)
{
    std::optional<DpuSet> set = tryAcquireRanks(n, tenant);
    if (!set) {
        PIM_FATAL("tenant '", tenant, "' asked for ", n, " ranks but ",
                  freeRankCount(), " of ", owner_.size(), " are free");
    }
    return *std::move(set);
}

void
RankScheduler::releaseRanks(const DpuSet &set)
{
    // Rank-granular sets cover every DPU of the ranks they touch; a
    // partial-rank (explicit) set must not release its whole rank.
    unsigned full = 0;
    for (const unsigned r : set.ranks())
        full += sys_.rankSize(r);
    PIM_ASSERT(set.size() == full,
               "releaseRanks needs a rank-granular set");
    for (const unsigned r : set.ranks()) {
        PIM_ASSERT(!owner_[r].empty(), "rank ", r,
                   " is already free (double release?)");
        owner_[r].clear();
    }
    if (met_ != nullptr) {
        met_->counter("ranks.releases").add();
        met_->gauge("ranks.free").set(freeRankCount());
    }
    serveWaiting();
}

void
RankScheduler::releaseRanks(const DpuSet &set, const std::string &tenant)
{
    PIM_ASSERT(!tenant.empty(), "owner-checked release needs a tenant");
    for (const unsigned r : set.ranks()) {
        PIM_ASSERT(owner_[r] == tenant,
                   "tenant '", tenant, "' tried to release rank ", r,
                   " owned by '", owner_[r],
                   "': a tenant may only release its own grant");
    }
    releaseRanks(set);
}

unsigned
RankScheduler::releaseAll(const std::string &tenant)
{
    PIM_ASSERT(!tenant.empty(), "releaseAll needs a tenant name");
    unsigned released = 0;
    for (unsigned r = 0; r < owner_.size(); ++r) {
        if (owner_[r] == tenant) {
            owner_[r].clear();
            ++released;
        }
    }
    if (released > 0) {
        if (met_ != nullptr) {
            met_->counter("ranks.releases").add();
            met_->gauge("ranks.free").set(freeRankCount());
        }
        serveWaiting();
    }
    return released;
}

void
RankScheduler::removeTenant(const std::string &tenant)
{
    releaseAll(tenant);
    revokeCbs_.erase(tenant);
    for (auto it = waiting_.begin(); it != waiting_.end();) {
        if (it->tenant == tenant)
            it = waiting_.erase(it);
        else
            ++it;
    }
}

void
RankScheduler::onRevoke(const std::string &tenant,
                        std::function<void(unsigned)> cb)
{
    PIM_ASSERT(!tenant.empty(), "onRevoke needs a tenant name");
    revokeCbs_[tenant] = std::move(cb);
}

std::string
RankScheduler::quarantine(unsigned rank)
{
    PIM_ASSERT(rank < owner_.size(), "rank out of range");
    PIM_ASSERT(!quarantined_[rank], "rank ", rank,
               " is already quarantined");
    std::string prev = owner_[rank];
    owner_[rank].clear();
    quarantined_[rank] = true;
    if (met_ != nullptr) {
        met_->counter("ranks.quarantines").add();
        met_->gauge("ranks.free").set(freeRankCount());
    }
    if (!prev.empty()) {
        auto it = revokeCbs_.find(prev);
        if (it != revokeCbs_.end() && it->second)
            it->second(rank);
    }
    return prev;
}

bool
RankScheduler::quarantined(unsigned rank) const
{
    PIM_ASSERT(rank < owner_.size(), "rank out of range");
    return quarantined_[rank];
}

void
RankScheduler::requestRanks(unsigned n, const std::string &tenant,
                            std::function<void(DpuSet)> cb)
{
    PIM_ASSERT(!tenant.empty(), "rank request needs a tenant name");
    PIM_ASSERT(n >= 1, "cannot request zero ranks");
    PIM_ASSERT(cb != nullptr, "rank request needs a grant callback");
    waiting_.push_back(Request{n, tenant, std::move(cb)});
    serveWaiting();
    // Still queued after a serve pass = the request parked (strict
    // FIFO: a non-empty queue means everything behind the head waits).
    if (met_ != nullptr && !waiting_.empty())
        met_->counter("ranks.waits").add();
}

void
RankScheduler::serveWaiting()
{
    // Strict FIFO: the head request blocks everything behind it until
    // it can be granted, which keeps grant order deterministic. Grant
    // callbacks may release or request ranks — re-entry collapses into
    // the outermost loop via the serving_ guard.
    if (serving_)
        return;
    serving_ = true;
    while (!waiting_.empty()) {
        Request &head = waiting_.front();
        std::optional<DpuSet> grant = tryAcquireRanks(head.n,
                                                      head.tenant);
        if (!grant)
            break;
        std::function<void(DpuSet)> cb = std::move(head.cb);
        waiting_.pop_front();
        cb(*std::move(grant));
    }
    serving_ = false;
}

unsigned
RankScheduler::freeRankCount() const
{
    unsigned n = 0;
    for (unsigned r = 0; r < owner_.size(); ++r) {
        if (owner_[r].empty() && !quarantined_[r])
            ++n;
    }
    return n;
}

const std::string &
RankScheduler::ownerOf(unsigned r) const
{
    PIM_ASSERT(r < owner_.size(), "rank out of range");
    return owner_[r];
}

} // namespace pim::core
