#include "core/rank_scheduler.hh"

#include "util/logging.hh"

namespace pim::core {

RankScheduler::RankScheduler(const PimSystem &sys)
    : sys_(sys), owner_(sys.numRanks())
{
}

std::optional<DpuSet>
RankScheduler::tryAcquireRanks(unsigned n, const std::string &tenant)
{
    PIM_ASSERT(!tenant.empty(), "rank acquisition needs a tenant name");
    PIM_ASSERT(n >= 1, "cannot acquire zero ranks");
    std::vector<unsigned> grant;
    grant.reserve(n);
    for (unsigned r = 0; r < owner_.size() && grant.size() < n; ++r) {
        if (owner_[r].empty())
            grant.push_back(r);
    }
    if (grant.size() < n)
        return std::nullopt;
    for (const unsigned r : grant)
        owner_[r] = tenant;
    return sys_.ranks(std::move(grant));
}

DpuSet
RankScheduler::acquireRanks(unsigned n, const std::string &tenant)
{
    std::optional<DpuSet> set = tryAcquireRanks(n, tenant);
    if (!set) {
        PIM_FATAL("tenant '", tenant, "' asked for ", n, " ranks but ",
                  freeRankCount(), " of ", owner_.size(), " are free");
    }
    return *std::move(set);
}

void
RankScheduler::releaseRanks(const DpuSet &set)
{
    // Rank-granular sets cover every DPU of the ranks they touch; a
    // partial-rank (explicit) set must not release its whole rank.
    unsigned full = 0;
    for (const unsigned r : set.ranks())
        full += sys_.rankSize(r);
    PIM_ASSERT(set.size() == full,
               "releaseRanks needs a rank-granular set");
    for (const unsigned r : set.ranks()) {
        PIM_ASSERT(!owner_[r].empty(), "rank ", r,
                   " is already free (double release?)");
        owner_[r].clear();
    }
}

unsigned
RankScheduler::freeRankCount() const
{
    unsigned n = 0;
    for (const std::string &o : owner_) {
        if (o.empty())
            ++n;
    }
    return n;
}

const std::string &
RankScheduler::ownerOf(unsigned r) const
{
    PIM_ASSERT(r < owner_.size(), "rank out of range");
    return owner_[r];
}

} // namespace pim::core
