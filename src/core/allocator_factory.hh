/**
 * @file
 * Factory for the paper's allocator design points, so benchmarks,
 * examples, and workloads can select an allocator by name.
 */

#ifndef PIM_CORE_ALLOCATOR_FACTORY_HH
#define PIM_CORE_ALLOCATOR_FACTORY_HH

#include <memory>
#include <string>

#include "alloc/allocator.hh"
#include "sim/dpu.hh"

namespace pim::core {

/** Every evaluated allocator design point. */
enum class AllocatorKind {
    StrawMan,          ///< buddy_alloc_PIM_DRAM (Section III-B)
    PimMallocSw,       ///< PIM-malloc-SW (Section IV-A)
    PimMallocHwSw,     ///< PIM-malloc-HW/SW (Section IV-B)
    PimMallocSwLazy,   ///< PIM-malloc-SW without pre-population
    PimMallocHwSwLazy, ///< PIM-malloc-HW/SW without pre-population
};

/** All kinds, in presentation order. */
inline constexpr AllocatorKind kAllKinds[] = {
    AllocatorKind::StrawMan,
    AllocatorKind::PimMallocSw,
    AllocatorKind::PimMallocHwSw,
    AllocatorKind::PimMallocSwLazy,
    AllocatorKind::PimMallocHwSwLazy,
};

/** The three design points the paper's headline figures compare. */
inline constexpr AllocatorKind kMainKinds[] = {
    AllocatorKind::StrawMan,
    AllocatorKind::PimMallocSw,
    AllocatorKind::PimMallocHwSw,
};

/** Display name matching the paper's terminology. */
const char *allocatorKindName(AllocatorKind kind);

/** Parse a display or CLI name ("straw-man", "sw", "hwsw", ...). */
AllocatorKind allocatorKindFromName(const std::string &name);

/** Extra knobs applied on top of each kind's paper defaults. */
struct AllocatorOverrides
{
    /** Heap size; 0 keeps the paper default (32 MB). */
    uint32_t heapBytes = 0;
    /** Straw-man minimum block; 0 keeps the paper default (32 B). */
    uint32_t minBlock = 0;
    /** Tasklets the allocator serves. */
    unsigned numTasklets = 16;
    /** SW metadata buffer bytes; 0 keeps the default (2 KB). */
    uint32_t swBufferBytes = 0;
};

/**
 * Build an allocator of @p kind for @p dpu with the paper's default
 * parameters, adjusted by @p overrides.
 */
std::unique_ptr<alloc::Allocator>
makeAllocator(sim::Dpu &dpu, AllocatorKind kind,
              const AllocatorOverrides &overrides = AllocatorOverrides{});

} // namespace pim::core

#endif // PIM_CORE_ALLOCATOR_FACTORY_HH
