/**
 * @file
 * Parallel multi-DPU execution engine. Bank-level DPUs share no state,
 * so a launch of N DPUs is embarrassingly parallel across host threads.
 * The engine hands index ranges to a pool of std::thread workers; each
 * worker writes results only into index-addressed slots, and reductions
 * happen as a sequential left fold over the slots after the join.
 *
 * Determinism guarantee: because every reduction input lands in its own
 * slot and the fold always walks slots in index order, the result is
 * bit-identical regardless of how many worker threads ran — including
 * the floating-point sums, whose association matches a plain serial
 * loop, not thread scheduling.
 *
 * Thread-count resolution: an explicit request wins; otherwise the
 * PIM_SIM_THREADS environment variable; otherwise the hardware
 * concurrency of the host.
 */

#ifndef PIM_CORE_PARALLEL_ENGINE_HH
#define PIM_CORE_PARALLEL_ENGINE_HH

#include <cstddef>
#include <functional>

namespace pim::core {

/**
 * Resolve the worker-thread count for DPU simulation.
 * @param requested explicit count; 0 defers to the environment.
 * @return requested if > 0; else PIM_SIM_THREADS if set to a positive
 *         integer; else std::thread::hardware_concurrency(); at least 1.
 */
unsigned resolveSimThreads(unsigned requested = 0);

/** Host thread pool that shards independent DPU launches. */
class ParallelDpuEngine
{
  public:
    /** Upper bound on indices grabbed per scheduling step; the actual
     *  grab size adapts down so few-index workloads still spread across
     *  all workers. Scheduling granularity only — determinism never
     *  depends on it. */
    static constexpr size_t kMaxGrabChunk = 16;

    /** @param num_threads 0 = resolveSimThreads() default. */
    explicit ParallelDpuEngine(unsigned num_threads = 0);

    /** Worker threads this engine launches per call. */
    unsigned threadCount() const { return threads_; }

    /**
     * Run @p fn(i) for every i in [0, n), sharded across the pool in
     * contiguous index ranges. Exceptions thrown by @p fn are captured
     * and the first one rethrown on the calling thread after all
     * workers join. @p fn must only touch state disjoint per index (or
     * index-addressed slots of a shared container).
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn) const;

  private:
    unsigned threads_;
};

} // namespace pim::core

#endif // PIM_CORE_PARALLEL_ENGINE_HH
