/**
 * @file
 * Parallel multi-DPU execution engine. Bank-level DPUs share no state,
 * so a launch of N DPUs is embarrassingly parallel across host threads.
 *
 * The engine owns a *persistent* pool of std::thread workers: threads
 * are spawned lazily on the first parallel forEach() and then parked on
 * a condition variable between calls, so per-launch dispatch is a
 * notify + wait instead of thread creation/join. The destructor stops
 * and joins every worker — no detached threads survive the engine
 * (sanitizer-clean shutdown). Each worker writes results only into
 * index-addressed slots, and reductions happen as a sequential left
 * fold over the slots after the call returns.
 *
 * Determinism guarantee: because every reduction input lands in its own
 * slot and the fold always walks slots in index order, the result is
 * bit-identical regardless of how many worker threads ran — including
 * the floating-point sums, whose association matches a plain serial
 * loop, not thread scheduling.
 *
 * Work distribution has two modes:
 *
 *  - Dynamic (default): workers grab contiguous chunks from a shared
 *    atomic cursor, so expensive indices spread across the pool.
 *
 *  - Pinned (PIM_SIM_AFFINITY=1): each worker is pinned to one host CPU
 *    and owns a fixed contiguous slice of the index space, the same
 *    slice on every call with the same n. Index -> worker -> CPU is
 *    then stable, which is what makes first-touch / NUMA binding of
 *    per-DPU memory to the owning worker's node effective (see
 *    util/host_placement.hh; simulation results are identical either
 *    way, only locality differs).
 *
 * Thread-count resolution: an explicit request wins; otherwise the
 * PIM_SIM_THREADS environment variable; otherwise the hardware
 * concurrency of the host.
 */

#ifndef PIM_CORE_PARALLEL_ENGINE_HH
#define PIM_CORE_PARALLEL_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pim::core {

/**
 * Resolve the worker-thread count for DPU simulation.
 * @param requested explicit count; 0 defers to the environment.
 * @return requested if > 0; else PIM_SIM_THREADS if set to a positive
 *         integer; else std::thread::hardware_concurrency(); at least 1.
 */
unsigned resolveSimThreads(unsigned requested = 0);

/** Persistent host thread pool that shards independent DPU launches. */
class ParallelDpuEngine
{
  public:
    /** Upper bound on indices grabbed per dynamic scheduling step; the
     *  actual grab size adapts down so few-index workloads still spread
     *  across all workers. Scheduling granularity only — determinism
     *  never depends on it. */
    static constexpr size_t kMaxGrabChunk = 16;

    /** @param num_threads 0 = resolveSimThreads() default. */
    explicit ParallelDpuEngine(unsigned num_threads = 0);

    /** Stops and joins all pool workers. */
    ~ParallelDpuEngine();

    ParallelDpuEngine(const ParallelDpuEngine &) = delete;
    ParallelDpuEngine &operator=(const ParallelDpuEngine &) = delete;

    /** Width of the worker pool (resolved thread count). */
    unsigned threadCount() const { return threads_; }

    /** Pool workers currently alive (0 until the first parallel call,
     *  then grows lazily up to threadCount()). */
    unsigned liveWorkers() const;

    /** True when PIM_SIM_AFFINITY pinned-worker placement is active. */
    bool affinityEnabled() const { return affinity_; }

    /**
     * Parse a PIM_SIM_AFFINITY value: unset / "" / "0" -> off,
     * "1" -> on; anything else is a fatal config error.
     */
    static bool affinityFromEnv(const char *value);

    /**
     * The worker that owns index @p i of an @p n-index launch under
     * pinned placement (stable across calls with the same n). Only
     * meaningful when affinityEnabled().
     */
    unsigned ownerOfIndex(size_t i, size_t n) const;

    /**
     * Run @p fn(i) for every i in [0, n), sharded across the pool in
     * contiguous index ranges. Exceptions thrown by @p fn are captured
     * and the first one rethrown on the calling thread after the pool
     * drains. @p fn must only touch state disjoint per index (or
     * index-addressed slots of a shared container). Calls from inside a
     * worker (nested forEach) run inline on that worker. Blocks until
     * every index has run.
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn) const;

    /**
     * True if dispatch() can hand an @p n-index job to the pool and
     * return while it runs: there are pool workers to run it (width
     * > 1) and the caller is not itself a pool worker. When false,
     * callers fall back to forEach() — same results, no overlap.
     */
    bool canDispatch(size_t n) const;

    /**
     * Asynchronous forEach: hand @p fn over [0, n) to the pool and
     * return immediately; the calling thread runs no index and is free
     * to consume results as workers produce them (the command queue's
     * pipelined drain). Requires canDispatch(n); @p fn must stay alive
     * until waitDispatch() returns, and exactly one waitDispatch() must
     * follow before the next dispatch()/forEach(). Exceptions from
     * @p fn are captured and rethrown by waitDispatch().
     */
    void dispatch(size_t n, const std::function<void(size_t)> &fn) const;

    /** Block until the dispatched job finished on every worker, then
     *  rethrow the first captured exception (if any). */
    void waitDispatch() const;

    /**
     * True once every worker finished the dispatched job — including
     * jobs cut short by an exception (runSlice drains the remaining
     * chunks). The ready-notification hook for consumers blocking on
     * per-index completion state: if the job is done but the state
     * never arrived, a worker failed, and waitDispatch() rethrows.
     */
    bool dispatchDone() const;

  private:
    /** One dispatched forEach call, shared with the workers. */
    struct Job
    {
        const std::function<void(size_t)> *fn = nullptr;
        size_t n = 0;
        size_t chunk = 1;
        size_t numChunks = 0;
        /** Workers taking part (ids < participants). */
        size_t participants = 0;
        std::atomic<size_t> nextChunk{0};
        size_t workersDone = 0;
        std::exception_ptr firstError;
        bool staticSlices = false;
    };

    void workerMain(unsigned worker_idx) const;
    void runSlice(unsigned worker_idx) const;
    /** Spawn pool workers up to @p count (caller holds no lock). */
    void ensureWorkers(size_t count) const;
    /** Publish @p fn over [0, n) as the current job and wake workers
     *  (caller holds callMutex_). */
    void startJob(size_t n, const std::function<void(size_t)> &fn) const;
    /** Join the current job; @return its first captured exception. */
    std::exception_ptr joinJob() const;

    unsigned threads_;
    bool affinity_;

    /** Pool state below is mutable: forEach() is logically const (it
     *  only runs the caller's fn), but dispatching it mutates the
     *  job slot and may grow the pool. */
    mutable std::mutex poolMutex_;
    mutable std::condition_variable wakeCv_;
    mutable std::condition_variable doneCv_;
    mutable std::vector<std::thread> workers_;
    mutable Job job_;
    /** Bumped per dispatched job; workers wait for it to move. */
    mutable uint64_t generation_ = 0;
    mutable bool stopping_ = false;
    /** True between dispatch() and waitDispatch() (misuse guard). */
    mutable bool dispatchActive_ = false;
    /** Serializes concurrent top-level forEach() callers; held across
     *  a dispatch()..waitDispatch() window. */
    mutable std::mutex callMutex_;
};

} // namespace pim::core

#endif // PIM_CORE_PARALLEL_ENGINE_HH
