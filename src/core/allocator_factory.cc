#include "core/allocator_factory.hh"

#include "alloc/pim_malloc.hh"
#include "alloc/straw_man.hh"
#include "util/logging.hh"

namespace pim::core {

const char *
allocatorKindName(AllocatorKind kind)
{
    switch (kind) {
      case AllocatorKind::StrawMan: return "Straw-man";
      case AllocatorKind::PimMallocSw: return "PIM-malloc-SW";
      case AllocatorKind::PimMallocHwSw: return "PIM-malloc-HW/SW";
      case AllocatorKind::PimMallocSwLazy: return "PIM-malloc-SW-lazy";
      case AllocatorKind::PimMallocHwSwLazy: return "PIM-malloc-HW/SW-lazy";
    }
    return "?";
}

AllocatorKind
allocatorKindFromName(const std::string &name)
{
    if (name == "straw-man" || name == "strawman" || name == "Straw-man")
        return AllocatorKind::StrawMan;
    if (name == "sw" || name == "PIM-malloc-SW")
        return AllocatorKind::PimMallocSw;
    if (name == "hwsw" || name == "hw/sw" || name == "PIM-malloc-HW/SW")
        return AllocatorKind::PimMallocHwSw;
    if (name == "sw-lazy" || name == "PIM-malloc-SW-lazy")
        return AllocatorKind::PimMallocSwLazy;
    if (name == "hwsw-lazy" || name == "PIM-malloc-HW/SW-lazy")
        return AllocatorKind::PimMallocHwSwLazy;
    PIM_FATAL("unknown allocator kind '", name, "'");
}

std::unique_ptr<alloc::Allocator>
makeAllocator(sim::Dpu &dpu, AllocatorKind kind,
              const AllocatorOverrides &overrides)
{
    if (kind == AllocatorKind::StrawMan) {
        alloc::StrawManConfig cfg;
        if (overrides.heapBytes)
            cfg.heapBytes = overrides.heapBytes;
        if (overrides.minBlock)
            cfg.minBlock = overrides.minBlock;
        if (overrides.swBufferBytes)
            cfg.swBufferBytes = overrides.swBufferBytes;
        return std::make_unique<alloc::StrawManAllocator>(dpu, cfg);
    }

    alloc::PimMallocConfig cfg;
    cfg.numTasklets = overrides.numTasklets;
    if (overrides.heapBytes)
        cfg.heapBytes = overrides.heapBytes;
    if (overrides.swBufferBytes)
        cfg.swBufferBytes = overrides.swBufferBytes;
    switch (kind) {
      case AllocatorKind::PimMallocSw:
        cfg.metadata = alloc::MetadataMode::SwBuffer;
        break;
      case AllocatorKind::PimMallocHwSw:
        cfg.metadata = alloc::MetadataMode::HwCache;
        break;
      case AllocatorKind::PimMallocSwLazy:
        cfg.metadata = alloc::MetadataMode::SwBuffer;
        cfg.prePopulate = false;
        break;
      case AllocatorKind::PimMallocHwSwLazy:
        cfg.metadata = alloc::MetadataMode::HwCache;
        cfg.prePopulate = false;
        break;
      default:
        PIM_PANIC("unreachable");
    }
    return std::make_unique<alloc::PimMallocAllocator>(dpu, cfg);
}

} // namespace pim::core
