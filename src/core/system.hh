/**
 * @file
 * Multi-DPU orchestration: the synchronous facade over the unified
 * command-queue runtime (core::PimSystem + core::CommandQueue). A call
 * performs one whole-system program launch and reduces: makespan = max
 * over DPUs, throughput/traffic = sum. The reduction is deterministic —
 * bit-identical results for any thread count. A sample of
 * representative DPUs can still be simulated and results extrapolated —
 * valid because the paper's workloads statically shard work uniformly
 * across DPUs — but with the parallel engine underneath, full-system
 * (sample = 0) sweeps are the norm.
 */

#ifndef PIM_CORE_SYSTEM_HH
#define PIM_CORE_SYSTEM_HH

#include <functional>

#include "sim/config.hh"
#include "sim/dpu.hh"
#include "sim/types.hh"

namespace pim::core {

/** Reduction of a multi-DPU launch. */
struct MultiDpuResult
{
    /** DPUs represented (the full system size). */
    unsigned numDpus = 0;
    /** DPUs actually simulated. */
    unsigned simulatedDpus = 0;
    /** Max per-DPU makespan, in cycles / seconds. */
    uint64_t maxCycles = 0;
    double maxSeconds = 0.0;
    /** Mean per-DPU makespan in seconds (for throughput estimates). */
    double meanSeconds = 0.0;
    /** Cycle breakdown summed over simulated DPUs. */
    sim::CycleBreakdown breakdown{};
    /** DMA traffic summed over simulated DPUs, then scaled to numDpus. */
    sim::TrafficStats traffic{};
};

/**
 * Simulate @p num_dpus DPUs running @p program; @p sample limits how
 * many distinct DPUs are actually simulated (0 = all). The program
 * receives a fresh Dpu and its global DPU index, and must run it to
 * completion (Dpu::run / Dpu::runBodies). Launches are sharded across
 * @p threads host workers (0 = PIM_SIM_THREADS env, else hardware
 * concurrency); the program must therefore not touch shared mutable
 * state. Results are bit-identical for any thread count.
 */
MultiDpuResult
simulateDpus(unsigned num_dpus, const sim::DpuConfig &cfg,
             const std::function<void(sim::Dpu &, unsigned)> &program,
             unsigned sample = 0, unsigned threads = 0);

} // namespace pim::core

#endif // PIM_CORE_SYSTEM_HH
