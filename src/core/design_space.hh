/**
 * @file
 * The design-space exploration of Table I / Fig 6: the four straw-man
 * implementations of buddy_alloc_PIM_DRAM that differ in where the
 * allocator metadata lives (host DRAM vs PIM MRAM) and which processor
 * executes the buddy algorithm (host CPU vs PIM cores).
 *
 * The experiment (Fig 6) has every PIM core issue `allocsPerDpu`
 * identical allocations; "Host-Executed" strategies run the buddy code
 * on the host model, "PIM-Executed" strategies run it on the DPU
 * simulator, and metadata/pointer movement between the two sides is
 * costed with the transfer model — one metadata sync per allocation
 * round, exactly like the Fig 5 pseudo-code loop.
 *
 * Each pseudo-program can be evaluated in two execution modes:
 *   Serial     — the paper's strawman: every round's transfers and
 *                compute strictly serialize (makespan = sum of work);
 *   Overlapped — the same work replayed on the command-queue runtime
 *                at rank granularity, so one rank's host compute and
 *                bus transfers overlap other ranks' execution
 *                (makespan = max-of-timelines < sum of work).
 */

#ifndef PIM_CORE_DESIGN_SPACE_HH
#define PIM_CORE_DESIGN_SPACE_HH

#include <string>

#include "alloc/straw_man.hh"
#include "sim/config.hh"
#include "sim/host_model.hh"
#include "sim/transfer_model.hh"

namespace pim::trace {
class Recorder;
}

namespace pim::telemetry {
class Registry;
}

namespace pim::core {

/** The four Table I strategies. */
enum class DesignStrategy {
    HostMetaHostExec,
    HostMetaPimExec,
    PimMetaHostExec,
    PimMetaPimExec,
};

/** All strategies in the paper's presentation order. */
inline constexpr DesignStrategy kAllStrategies[] = {
    DesignStrategy::HostMetaHostExec,
    DesignStrategy::HostMetaPimExec,
    DesignStrategy::PimMetaHostExec,
    DesignStrategy::PimMetaPimExec,
};

/** How the pseudo-program's rounds compose in time. */
enum class ExecutionMode {
    Serial,
    Overlapped,
};

/** Display name matching Table I. */
const char *designStrategyName(DesignStrategy s);

/** Experiment parameters (defaults reproduce Fig 6). */
struct DesignSpaceParams
{
    /** PIM cores issuing allocations concurrently. */
    unsigned numDpus = 512;
    /** DPUs per rank (granularity of the Overlapped pipeline). */
    unsigned dpusPerRank = 64;
    /** Allocations per PIM core (Fig 6: 128). */
    unsigned allocsPerDpu = 128;
    /** Allocation size (Fig 6: 32 B). */
    uint32_t allocSize = 32;
    /** Tasklets running the PIM-executed allocator. */
    unsigned taskletsPerDpu = 1;
    /** Straw-man allocator configuration (heap, tree, buffer). */
    alloc::StrawManConfig allocCfg{};
    /** DPU hardware parameters. */
    sim::DpuConfig dpuCfg{};
    /** Host CPU parameters. */
    sim::HostConfig hostCfg{};
    /** Host<->PIM transfer parameters. */
    sim::TransferConfig xferCfg{};
    /**
     * Per-DPU driver interaction time for host-side bookkeeping of one
     * allocation round (dpu_copy of returned pointers, rank sync).
     */
    double driverCallSec = 25e-6;
    /** Host worker threads of the Overlapped replay (0 = auto). */
    unsigned simThreads = 0;
    /**
     * Span recorder for the Overlapped replay's measured phase (the
     * untimed allocator init is not traced); ignored in Serial mode.
     */
    trace::Recorder *recorder = nullptr;
    /** Metrics registry for the Overlapped replay's measured phase
     *  (queue counters and utilization series); ignored in Serial
     *  mode, which never touches the command queue. */
    telemetry::Registry *metrics = nullptr;
};

/** Decomposed latency of one strategy. */
struct DesignSpaceResult
{
    DesignStrategy strategy{};
    ExecutionMode mode = ExecutionMode::Serial;
    double computeSeconds = 0.0;  ///< buddy execution work (sum)
    double transferSeconds = 0.0; ///< metadata + pointer move work (sum)
    /** End-to-end latency: the sum of the work in Serial mode, the
     *  joined max-of-timelines makespan in Overlapped mode. */
    double makespanSeconds = 0.0;

    double
    totalSeconds() const
    {
        return makespanSeconds;
    }

    /** Work hidden by overlap (zero in Serial mode). */
    double
    overlapSavedSeconds() const
    {
        return computeSeconds + transferSeconds - makespanSeconds;
    }

    /** Fraction of the work that is transfers (Fig 6(b)). */
    double
    transferFraction() const
    {
        const double t = computeSeconds + transferSeconds;
        return t > 0 ? transferSeconds / t : 0.0;
    }
};

/** Evaluate one design strategy under @p params. */
DesignSpaceResult evalStrategy(DesignStrategy s,
                               const DesignSpaceParams &params,
                               ExecutionMode mode = ExecutionMode::Serial);

/** Bytes of straw-man buddy metadata per DPU under @p cfg. */
uint64_t metadataBytesPerDpu(const alloc::StrawManConfig &cfg);

} // namespace pim::core

#endif // PIM_CORE_DESIGN_SPACE_HH
