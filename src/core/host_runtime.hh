/**
 * @file
 * Host-side programming model of Fig 5: a co-processor runtime in the
 * style of UPMEM's host API (and the paper's pseudo-code) that owns a
 * set of DPUs and exposes
 *
 *   pimMemcpy()  — host<->PIM bulk transfer, costed by the transfer
 *                  model (dpu_push_xfer equivalent);
 *   pimLaunch()  — run a tasklet program on every DPU and advance the
 *                  host timeline by the slowest DPU's makespan;
 *   hostCompute() — host-side work between launches.
 *
 * Since the command-queue refactor this class is a thin synchronous
 * facade over core::PimSystem + core::CommandQueue: every call
 * enqueues one command and immediately sync()s, so the single
 * wall-clock timeline composes exactly like before, while asynchronous
 * experiments use the queue directly (see core/command_queue.hh).
 *
 * Memory realism vs scale: only `sampleDpus` DPU instances are actually
 * materialized (bank-level DPUs share no state, and the paper's
 * workloads shard uniformly); results reduce as max over the sample
 * while `numDpus` drives transfer bandwidth and aggregate statistics.
 */

#ifndef PIM_CORE_HOST_RUNTIME_HH
#define PIM_CORE_HOST_RUNTIME_HH

#include <functional>

#include "core/command_queue.hh"
#include "core/pim_system.hh"
#include "sim/config.hh"
#include "sim/dpu.hh"
#include "sim/host_model.hh"
#include "sim/transfer_model.hh"

namespace pim::core {

/** Host runtime configuration. */
struct HostRuntimeConfig
{
    /** Logical system size. */
    unsigned numDpus = 512;
    /** DPU instances actually simulated (0 = all). */
    unsigned sampleDpus = 4;
    /** DPU hardware parameters. */
    sim::DpuConfig dpuCfg{};
    /** Host CPU model. */
    sim::HostConfig hostCfg{};
    /** Host<->PIM transfer model. */
    sim::TransferConfig xferCfg{};
    /** Host worker threads for pimLaunch (0 = PIM_SIM_THREADS env,
     *  else hardware concurrency). */
    unsigned simThreads = 0;
};

/** The synchronous co-processor runtime facade. */
class HostRuntime
{
  public:
    explicit HostRuntime(const HostRuntimeConfig &cfg);

    /**
     * Transfer @p bytes_per_dpu to/from every DPU in one batched call;
     * advances the host timeline. @return seconds this copy took.
     */
    double pimMemcpy(uint64_t bytes_per_dpu, CopyDirection dir);

    /**
     * Launch @p tasklets tasklets running @p body on every DPU; the
     * body receives the tasklet context and the DPU's global index.
     * DPU executions are sharded across the runtime's host thread pool
     * (cfg.simThreads); @p body must not touch state shared between
     * DPUs. Advances the timeline by launch overhead + slowest DPU
     * makespan. @return seconds the launch took.
     */
    double pimLaunch(unsigned tasklets,
                     const std::function<void(sim::Tasklet &, unsigned)>
                         &body);

    /**
     * Run @p tasks independent host-side tasks of @p instrs_per_task
     * instructions (the pthreads parallel-for of Fig 5(a,c)); advances
     * the timeline. @return seconds.
     */
    double hostCompute(uint64_t tasks, uint64_t instrs_per_task);

    /** Wall-clock seconds elapsed on the runtime's timeline. */
    double elapsedSeconds() const { return queue_.elapsedSeconds(); }

    /** Cumulative host<->PIM bytes moved (all DPUs). */
    uint64_t transferredBytes() const
    {
        return queue_.transferredBytes();
    }

    /** Access a sampled DPU (e.g. to attach allocators or verify). */
    sim::Dpu &dpu(unsigned sample_index)
    {
        return sys_.dpu(sample_index);
    }

    /** Global DPU index represented by sample @p sample_index. */
    unsigned globalIndex(unsigned sample_index) const
    {
        return sys_.globalIndex(sample_index);
    }

    /** Number of materialized DPU instances. */
    unsigned sampleCount() const { return sys_.sampleCount(); }

    /** Logical system size. */
    unsigned numDpus() const { return sys_.numDpus(); }

    /** Host worker threads used per pimLaunch. */
    unsigned simThreads() const { return sys_.engine().threadCount(); }

    /** The underlying system (rank structure, DPU sets). */
    PimSystem &system() { return sys_; }

    /** The underlying queue (for composing async experiments). */
    CommandQueue &queue() { return queue_; }

    /** Reset the timeline (keeps DPU state). */
    void resetTimeline() { queue_.resetTimeline(); }

  private:
    PimSystem sys_;
    CommandQueue queue_;
};

} // namespace pim::core

#endif // PIM_CORE_HOST_RUNTIME_HH
