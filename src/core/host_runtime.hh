/**
 * @file
 * Host-side programming model of Fig 5: a co-processor runtime in the
 * style of UPMEM's host API (and the paper's pseudo-code) that owns a
 * set of DPUs and exposes
 *
 *   pimMemcpy()  — host<->PIM bulk transfer, costed by the transfer
 *                  model (dpu_push_xfer equivalent);
 *   pimLaunch()  — run a tasklet program on every DPU and advance the
 *                  host timeline by the slowest DPU's makespan;
 *   hostCompute() — host-side work between launches.
 *
 * The runtime keeps one wall-clock timeline so experiments can compose
 * transfers, launches, and host work exactly like the four design-space
 * pseudo-programs, and like real UPMEM host applications.
 *
 * Memory realism vs scale: only `sampleDpus` DPU instances are actually
 * materialized (bank-level DPUs share no state, and the paper's
 * workloads shard uniformly); results reduce as max over the sample
 * while `numDpus` drives transfer bandwidth and aggregate statistics.
 */

#ifndef PIM_CORE_HOST_RUNTIME_HH
#define PIM_CORE_HOST_RUNTIME_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/parallel_engine.hh"
#include "sim/config.hh"
#include "sim/dpu.hh"
#include "sim/host_model.hh"
#include "sim/transfer_model.hh"

namespace pim::core {

/** Direction of a pimMemcpy(). */
enum class CopyDirection {
    HostToPim,
    PimToHost,
};

/** Host runtime configuration. */
struct HostRuntimeConfig
{
    /** Logical system size. */
    unsigned numDpus = 512;
    /** DPU instances actually simulated (0 = all). */
    unsigned sampleDpus = 4;
    /** DPU hardware parameters. */
    sim::DpuConfig dpuCfg{};
    /** Host CPU model. */
    sim::HostConfig hostCfg{};
    /** Host<->PIM transfer model. */
    sim::TransferConfig xferCfg{};
    /** Host worker threads for pimLaunch (0 = PIM_SIM_THREADS env,
     *  else hardware concurrency). */
    unsigned simThreads = 0;
};

/** The co-processor runtime. */
class HostRuntime
{
  public:
    explicit HostRuntime(const HostRuntimeConfig &cfg);

    /**
     * Transfer @p bytes_per_dpu to/from every DPU in one batched call;
     * advances the host timeline. @return seconds this copy took.
     */
    double pimMemcpy(uint64_t bytes_per_dpu, CopyDirection dir);

    /**
     * Launch @p tasklets tasklets running @p body on every DPU; the
     * body receives the tasklet context and the DPU's global index.
     * DPU executions are sharded across the runtime's host thread pool
     * (cfg.simThreads); @p body must not touch state shared between
     * DPUs. Advances the timeline by launch overhead + slowest DPU
     * makespan. @return seconds the launch took.
     */
    double pimLaunch(unsigned tasklets,
                     const std::function<void(sim::Tasklet &, unsigned)>
                         &body);

    /**
     * Run @p tasks independent host-side tasks of @p instrs_per_task
     * instructions (the pthreads parallel-for of Fig 5(a,c)); advances
     * the timeline. @return seconds.
     */
    double hostCompute(uint64_t tasks, uint64_t instrs_per_task);

    /** Wall-clock seconds elapsed on the runtime's timeline. */
    double elapsedSeconds() const { return elapsed_; }

    /** Cumulative host<->PIM bytes moved (all DPUs). */
    uint64_t transferredBytes() const { return transferredBytes_; }

    /** Access a sampled DPU (e.g. to attach allocators or verify). */
    sim::Dpu &dpu(unsigned sample_index);

    /** Global DPU index represented by sample @p sample_index. */
    unsigned globalIndex(unsigned sample_index) const;

    /** Number of materialized DPU instances. */
    unsigned sampleCount() const
    {
        return static_cast<unsigned>(dpus_.size());
    }

    /** Logical system size. */
    unsigned numDpus() const { return cfg_.numDpus; }

    /** Host worker threads used per pimLaunch. */
    unsigned simThreads() const { return engine_.threadCount(); }

    /** Reset the timeline (keeps DPU state). */
    void resetTimeline();

  private:
    HostRuntimeConfig cfg_;
    sim::HostModel host_;
    sim::TransferModel xfer_;
    ParallelDpuEngine engine_;
    std::vector<std::unique_ptr<sim::Dpu>> dpus_;
    double elapsed_ = 0.0;
    uint64_t transferredBytes_ = 0;
};

} // namespace pim::core

#endif // PIM_CORE_HOST_RUNTIME_HH
