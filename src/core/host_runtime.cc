#include "core/host_runtime.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pim::core {

HostRuntime::HostRuntime(const HostRuntimeConfig &cfg)
    : cfg_(cfg), host_(cfg.hostCfg), xfer_(cfg.xferCfg),
      engine_(cfg.simThreads)
{
    PIM_ASSERT(cfg.numDpus > 0, "need at least one DPU");
    const unsigned sample = cfg.sampleDpus == 0
        ? cfg.numDpus : std::min(cfg.sampleDpus, cfg.numDpus);
    for (unsigned i = 0; i < sample; ++i)
        dpus_.push_back(std::make_unique<sim::Dpu>(cfg.dpuCfg));
}

sim::Dpu &
HostRuntime::dpu(unsigned sample_index)
{
    return *dpus_.at(sample_index);
}

unsigned
HostRuntime::globalIndex(unsigned sample_index) const
{
    const unsigned sample = static_cast<unsigned>(dpus_.size());
    return sample == cfg_.numDpus
        ? sample_index : sample_index * (cfg_.numDpus / sample);
}

double
HostRuntime::pimMemcpy(uint64_t bytes_per_dpu, CopyDirection dir)
{
    (void)dir; // symmetric cost model
    const double sec = xfer_.seconds(bytes_per_dpu, cfg_.numDpus);
    elapsed_ += sec;
    transferredBytes_ += bytes_per_dpu * cfg_.numDpus;
    return sec;
}

double
HostRuntime::pimLaunch(unsigned tasklets,
                       const std::function<void(sim::Tasklet &, unsigned)>
                           &body)
{
    // DPUs share no state, so the launch shards across the host pool;
    // per-DPU makespans land in index-addressed slots and reduce
    // sequentially afterwards, keeping the result thread-count
    // independent.
    std::vector<uint64_t> cycles(dpus_.size(), 0);
    engine_.forEach(dpus_.size(), [&](size_t i) {
        const unsigned global = globalIndex(static_cast<unsigned>(i));
        dpus_[i]->run(tasklets, [&](sim::Tasklet &t) { body(t, global); });
        cycles[i] = dpus_[i]->lastElapsedCycles();
    });
    uint64_t max_cycles = 0;
    for (const uint64_t c : cycles)
        max_cycles = std::max(max_cycles, c);
    const double sec = cfg_.xferCfg.launchLatencySec
        + cfg_.dpuCfg.cyclesToSeconds(max_cycles);
    elapsed_ += sec;
    return sec;
}

double
HostRuntime::hostCompute(uint64_t tasks, uint64_t instrs_per_task)
{
    const double sec = host_.seconds(tasks, instrs_per_task);
    elapsed_ += sec;
    return sec;
}

void
HostRuntime::resetTimeline()
{
    elapsed_ = 0.0;
    transferredBytes_ = 0;
}

} // namespace pim::core
