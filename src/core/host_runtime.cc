#include "core/host_runtime.hh"

namespace pim::core {

namespace {

PimSystemConfig
toSystemConfig(const HostRuntimeConfig &cfg)
{
    PimSystemConfig scfg;
    scfg.numDpus = cfg.numDpus;
    scfg.sampleDpus = cfg.sampleDpus;
    scfg.dpuCfg = cfg.dpuCfg;
    scfg.hostCfg = cfg.hostCfg;
    scfg.xferCfg = cfg.xferCfg;
    scfg.simThreads = cfg.simThreads;
    return scfg;
}

} // namespace

HostRuntime::HostRuntime(const HostRuntimeConfig &cfg)
    : sys_(toSystemConfig(cfg)), queue_(sys_)
{
}

double
HostRuntime::pimMemcpy(uint64_t bytes_per_dpu, CopyDirection dir)
{
    const double sec = queue_.memcpy(sys_.all(), bytes_per_dpu, dir);
    queue_.sync();
    return sec;
}

double
HostRuntime::pimLaunch(unsigned tasklets,
                       const std::function<void(sim::Tasklet &, unsigned)>
                           &body)
{
    const double before = queue_.elapsedSeconds();
    queue_.launch(sys_.all(), tasklets, body);
    return queue_.sync() - before;
}

double
HostRuntime::hostCompute(uint64_t tasks, uint64_t instrs_per_task)
{
    const double sec = queue_.hostCompute(tasks, instrs_per_task);
    queue_.sync();
    return sec;
}

} // namespace pim::core
