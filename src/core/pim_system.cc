#include "core/pim_system.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace pim::core {

PimSystemConfig
singleDpuConfig(const sim::DpuConfig &dpu_cfg)
{
    PimSystemConfig cfg;
    cfg.numDpus = 1;
    cfg.dpuCfg = dpu_cfg;
    cfg.simThreads = 1;
    return cfg;
}

unsigned
sampleGlobalIndex(unsigned slot, unsigned sample, unsigned num_dpus)
{
    if (sample == 0 || sample >= num_dpus)
        return slot;
    return static_cast<unsigned>(static_cast<uint64_t>(slot) * num_dpus
                                 / sample);
}

DpuSet::DpuSet(const PimSystem *sys, Kind kind, unsigned rank,
               std::vector<unsigned> members)
    : sys_(sys), kind_(kind), rank_(rank), members_(std::move(members))
{
    switch (kind_) {
      case Kind::All:
        size_ = sys_->numDpus();
        for (unsigned r = 0; r < sys_->numRanks(); ++r)
            ranks_.push_back(r);
        for (unsigned s = 0; s < sys_->sampleCount(); ++s)
            slots_.push_back(s);
        break;
      case Kind::Rank:
        size_ = sys_->rankSize(rank_);
        ranks_.push_back(rank_);
        for (unsigned s = 0; s < sys_->sampleCount(); ++s) {
            if (sys_->rankOf(sys_->globalIndex(s)) == rank_)
                slots_.push_back(s);
        }
        break;
      case Kind::Ranks:
        // members_ holds sorted rank ids; DPU membership stays implicit
        // so a many-rank set costs O(ranks), not O(DPUs).
        ranks_ = members_;
        for (const unsigned r : ranks_)
            size_ += sys_->rankSize(r);
        for (unsigned s = 0; s < sys_->sampleCount(); ++s) {
            if (std::binary_search(
                    ranks_.begin(), ranks_.end(),
                    sys_->rankOf(sys_->globalIndex(s))))
                slots_.push_back(s);
        }
        break;
      case Kind::Explicit:
        size_ = static_cast<unsigned>(members_.size());
        // members_ is sorted (subset() guarantees it — contains()'s
        // binary_search depends on that) and rankOf is monotone, so
        // this builds ranks_ ascending and duplicate-free.
        for (const unsigned g : members_) {
            const unsigned r = sys_->rankOf(g);
            if (ranks_.empty() || ranks_.back() != r)
                ranks_.push_back(r);
        }
        for (unsigned s = 0; s < sys_->sampleCount(); ++s) {
            if (std::binary_search(members_.begin(), members_.end(),
                                   sys_->globalIndex(s)))
                slots_.push_back(s);
        }
        break;
    }
}

namespace {

/** Group @p slots into contiguous per-rank runs over @p ranks. Both
 *  lists are ascending and every slot's rank is a member of ranks, so
 *  one merge-style walk builds the run offsets. */
std::shared_ptr<const SlotPartition>
buildSlotPartition(const PimSystem &sys, std::vector<unsigned> ranks,
                   std::vector<unsigned> slots)
{
    auto part = std::make_shared<SlotPartition>();
    part->ranks = std::move(ranks);
    part->slots = std::move(slots);
    part->rankSlotBegin.reserve(part->ranks.size() + 1);
    size_t j = 0;
    for (const unsigned r : part->ranks) {
        part->rankSlotBegin.push_back(static_cast<unsigned>(j));
        while (j < part->slots.size()
               && sys.rankOf(sys.globalIndex(part->slots[j])) == r)
            ++j;
    }
    part->rankSlotBegin.push_back(static_cast<unsigned>(j));
    PIM_ASSERT(j == part->slots.size(),
               "slot outside the set's rank list (DpuSet invariant "
               "violated)");
    return part;
}

} // namespace

const std::shared_ptr<const SlotPartition> &
DpuSet::partition() const
{
    if (part_ == nullptr) {
        part_ = kind_ == Kind::All
            ? sys_->allPartition()
            : buildSlotPartition(*sys_, ranks_, slots_);
    }
    return part_;
}

const std::shared_ptr<const SlotPartition> &
PimSystem::allPartition() const
{
    if (allPart_ == nullptr) {
        std::vector<unsigned> ranks(numRanks_);
        for (unsigned r = 0; r < numRanks_; ++r)
            ranks[r] = r;
        std::vector<unsigned> slots(sampleCount());
        for (unsigned s = 0; s < sampleCount(); ++s)
            slots[s] = s;
        allPart_ =
            buildSlotPartition(*this, std::move(ranks), std::move(slots));
    }
    return allPart_;
}

DpuSet
DpuSet::complement() const
{
    if (kind_ == Kind::Explicit) {
        std::vector<unsigned> rest;
        rest.reserve(sys_->numDpus() - members_.size());
        for (unsigned g = 0; g < sys_->numDpus(); ++g) {
            if (!std::binary_search(members_.begin(), members_.end(), g))
                rest.push_back(g);
        }
        PIM_ASSERT(!rest.empty(),
                   "complement of the full system is empty");
        return DpuSet(sys_, Kind::Explicit, 0, std::move(rest));
    }
    // All / Rank / Ranks are rank-granular: complement over rank ids.
    std::vector<unsigned> rest;
    for (unsigned r = 0; r < sys_->numRanks(); ++r) {
        if (std::find(ranks_.begin(), ranks_.end(), r) == ranks_.end())
            rest.push_back(r);
    }
    PIM_ASSERT(!rest.empty(), "complement of the full system is empty");
    return DpuSet(sys_, Kind::Ranks, 0, std::move(rest));
}

unsigned
DpuSet::indexOf(unsigned global) const
{
    PIM_ASSERT(contains(global), "DPU ", global,
               " is not a member of this set");
    switch (kind_) {
      case Kind::All:
        return global;
      case Kind::Rank:
        return global - rank_ * sys_->config().dpusPerRank;
      case Kind::Ranks: {
        // Members are implicit: sum the sizes of earlier member ranks,
        // then add the offset inside the owning rank.
        const unsigned r = sys_->rankOf(global);
        unsigned before = 0;
        for (const unsigned m : ranks_) {
            if (m == r)
                break;
            before += sys_->rankSize(m);
        }
        return before + (global - r * sys_->config().dpusPerRank);
      }
      case Kind::Explicit:
        return static_cast<unsigned>(
            std::lower_bound(members_.begin(), members_.end(), global)
            - members_.begin());
    }
    return 0;
}

unsigned
DpuSet::memberAt(unsigned idx) const
{
    PIM_ASSERT(idx < size_, "member index ", idx,
               " out of range for a set of ", size_, " DPUs");
    switch (kind_) {
      case Kind::All:
        return idx;
      case Kind::Rank:
        return rank_ * sys_->config().dpusPerRank + idx;
      case Kind::Ranks: {
        unsigned rest = idx;
        for (const unsigned r : ranks_) {
            const unsigned n = sys_->rankSize(r);
            if (rest < n)
                return r * sys_->config().dpusPerRank + rest;
            rest -= n;
        }
        break;
      }
      case Kind::Explicit:
        return members_[idx];
    }
    return 0; // unreachable: idx < size_
}

std::pair<DpuSet, DpuSet>
DpuSet::partitionRanks(double fraction) const
{
    PIM_ASSERT(kind_ != Kind::Explicit,
               "partitionRanks needs a rank-granular set");
    const unsigned n = static_cast<unsigned>(ranks_.size());
    PIM_ASSERT(n >= 2, "cannot partition a set of ", n, " rank(s)");
    const auto want = static_cast<long>(
        std::lround(fraction * static_cast<double>(n)));
    const unsigned k = static_cast<unsigned>(
        std::clamp<long>(want, 1, n - 1));
    std::vector<unsigned> head(ranks_.begin(), ranks_.begin() + k);
    std::vector<unsigned> tail(ranks_.begin() + k, ranks_.end());
    return {DpuSet(sys_, Kind::Ranks, 0, std::move(head)),
            DpuSet(sys_, Kind::Ranks, 0, std::move(tail))};
}

bool
DpuSet::contains(unsigned global) const
{
    switch (kind_) {
      case Kind::All:
        return global < sys_->numDpus();
      case Kind::Rank:
        return global < sys_->numDpus() && sys_->rankOf(global) == rank_;
      case Kind::Ranks:
        return global < sys_->numDpus()
            && std::binary_search(members_.begin(), members_.end(),
                                  sys_->rankOf(global));
      case Kind::Explicit:
        return std::binary_search(members_.begin(), members_.end(),
                                  global);
    }
    return false;
}

PimSystem::PimSystem(const PimSystemConfig &cfg)
    : cfg_(cfg), host_(cfg.hostCfg), xfer_(cfg.xferCfg),
      engine_(cfg.simThreads)
{
    PIM_ASSERT(cfg.numDpus > 0, "need at least one DPU");
    PIM_ASSERT(cfg.dpusPerRank > 0, "need at least one DPU per rank");
    numRanks_ = (cfg.numDpus + cfg.dpusPerRank - 1) / cfg.dpusPerRank;
    const unsigned sample = cfg.samplePerRank ? numRanks_
        : cfg.sampleDpus == 0
            ? cfg.numDpus : std::min(cfg.sampleDpus, cfg.numDpus);
    dpus_.reserve(sample);
    for (unsigned i = 0; i < sample; ++i)
        dpus_.push_back(std::make_unique<sim::Dpu>(cfg.dpuCfg));

    if (engine_.affinityEnabled()) {
        // Placement pass: with pinned workers and static slicing, each
        // sample slot is simulated by the same worker (and thus the
        // same core) on every launch, so let that worker bind its DPUs'
        // banks to its NUMA node. Best-effort — a no-op on single-node
        // hosts or PIM_SIM_NUMA=OFF builds.
        engine_.forEach(dpus_.size(), [this](size_t i) {
            (void)dpus_[i]->bindMemoryToCallingThread();
        });
    }
}

unsigned
PimSystem::rankSize(unsigned r) const
{
    PIM_ASSERT(r < numRanks_, "rank out of range");
    const unsigned begin = r * cfg_.dpusPerRank;
    return std::min(cfg_.dpusPerRank, cfg_.numDpus - begin);
}

unsigned
PimSystem::rankOf(unsigned global) const
{
    PIM_ASSERT(global < cfg_.numDpus, "DPU index out of range");
    return global / cfg_.dpusPerRank;
}

sim::Dpu &
PimSystem::dpu(unsigned slot)
{
    return *dpus_.at(slot);
}

unsigned
PimSystem::globalIndex(unsigned slot) const
{
    PIM_ASSERT(slot < dpus_.size(), "sample slot out of range");
    if (cfg_.samplePerRank)
        return slot * cfg_.dpusPerRank; // first DPU of rank `slot`
    return sampleGlobalIndex(slot,
                             static_cast<unsigned>(dpus_.size()),
                             cfg_.numDpus);
}

unsigned
PimSystem::slotOf(unsigned global) const
{
    // globalIndex is strictly increasing in the slot, so binary search.
    const unsigned sample = static_cast<unsigned>(dpus_.size());
    unsigned lo = 0, hi = sample;
    while (lo < hi) {
        const unsigned mid = lo + (hi - lo) / 2;
        if (globalIndex(mid) < global)
            lo = mid + 1;
        else
            hi = mid;
    }
    PIM_ASSERT(lo < sample && globalIndex(lo) == global,
               "global DPU index ", global, " is not materialized");
    return lo;
}

DpuSet
PimSystem::all() const
{
    return DpuSet(this, DpuSet::Kind::All, 0, {});
}

DpuSet
PimSystem::rank(unsigned r) const
{
    PIM_ASSERT(r < numRanks_, "rank out of range");
    return DpuSet(this, DpuSet::Kind::Rank, r, {});
}

DpuSet
PimSystem::subset(std::vector<unsigned> globals) const
{
    std::sort(globals.begin(), globals.end());
    globals.erase(std::unique(globals.begin(), globals.end()),
                  globals.end());
    PIM_ASSERT(!globals.empty(), "empty DPU subset");
    PIM_ASSERT(globals.back() < cfg_.numDpus,
               "subset member out of range");
    return DpuSet(this, DpuSet::Kind::Explicit, 0, std::move(globals));
}

DpuSet
PimSystem::rankRange(unsigned first, unsigned count) const
{
    PIM_ASSERT(count > 0, "empty rank range");
    PIM_ASSERT(first < numRanks_ && count <= numRanks_ - first,
               "rank range [", first, ", ", first + count,
               ") out of bounds");
    std::vector<unsigned> ids(count);
    for (unsigned i = 0; i < count; ++i)
        ids[i] = first + i;
    return DpuSet(this, DpuSet::Kind::Ranks, 0, std::move(ids));
}

DpuSet
PimSystem::ranks(std::vector<unsigned> rank_ids) const
{
    std::sort(rank_ids.begin(), rank_ids.end());
    rank_ids.erase(std::unique(rank_ids.begin(), rank_ids.end()),
                   rank_ids.end());
    PIM_ASSERT(!rank_ids.empty(), "empty rank set");
    PIM_ASSERT(rank_ids.back() < numRanks_, "rank id out of range");
    return DpuSet(this, DpuSet::Kind::Ranks, 0, std::move(rank_ids));
}

std::pair<DpuSet, DpuSet>
PimSystem::partitionRanks(double fraction) const
{
    PIM_ASSERT(numRanks_ >= 2,
               "cannot partition a single-rank system");
    const auto want = static_cast<long>(
        std::lround(fraction * static_cast<double>(numRanks_)));
    const unsigned k = static_cast<unsigned>(
        std::clamp<long>(want, 1, numRanks_ - 1));
    DpuSet head = rankRange(0, k);
    DpuSet tail = head.complement();
    return {std::move(head), std::move(tail)};
}

} // namespace pim::core
