/**
 * @file
 * Rank-ownership arbitration for multi-tenant PIM scheduling: a
 * RankScheduler tracks which tenant owns each rank of one PimSystem and
 * grants/releases whole ranks, so two drivers sharing a CommandQueue
 * (an LLM serving engine, a graph update driver) get rank-level
 * isolation — each tenant launches only on ranks it owns, and the bus
 * stays the only shared resource (the interference structure of a real
 * shared PIM serving host, cf. meta_mapper's pim_rankset).
 *
 * Grants are deterministic: acquireRanks hands out the lowest-numbered
 * free ranks, so a co-tenant experiment is reproducible regardless of
 * tenant arrival interleaving. The scheduler is bookkeeping only — it
 * does not enforce that commands stay inside their tenant's grant (the
 * queue cannot know which tenant a DpuSet "belongs" to); drivers are
 * expected to build their DpuSets from the granted set.
 */

#ifndef PIM_CORE_RANK_SCHEDULER_HH
#define PIM_CORE_RANK_SCHEDULER_HH

#include <optional>
#include <string>
#include <vector>

#include "core/pim_system.hh"

namespace pim::core {

/** Rank-granular ownership arbiter of one PimSystem. */
class RankScheduler
{
  public:
    explicit RankScheduler(const PimSystem &sys);

    /**
     * Try to acquire @p n ranks for @p tenant: grants the n
     * lowest-numbered free ranks as one DpuSet, or nullopt if fewer
     * than n ranks are free (no partial grants). @p tenant must be
     * non-empty — it names the owner in ownerOf() and error messages.
     */
    std::optional<DpuSet> tryAcquireRanks(unsigned n,
                                          const std::string &tenant);

    /** Like tryAcquireRanks, but contention is fatal: use when the
     *  experiment's partitioning must succeed by construction. */
    DpuSet acquireRanks(unsigned n, const std::string &tenant);

    /**
     * Return every rank of @p set to the free pool. Fatal if the set
     * is not rank-granular or contains a rank that is not currently
     * owned (double release / never acquired).
     */
    void releaseRanks(const DpuSet &set);

    /** Ranks not currently granted to any tenant. */
    unsigned freeRankCount() const;

    /** Total ranks under arbitration (== system's numRanks). */
    unsigned numRanks() const
    {
        return static_cast<unsigned>(owner_.size());
    }

    /** Owning tenant of rank @p r ("" = free). */
    const std::string &ownerOf(unsigned r) const;

  private:
    const PimSystem &sys_;
    /** Owner name per rank; empty = free. */
    std::vector<std::string> owner_;
};

} // namespace pim::core

#endif // PIM_CORE_RANK_SCHEDULER_HH
