/**
 * @file
 * Rank-ownership arbitration for multi-tenant PIM scheduling: a
 * RankScheduler tracks which tenant owns each rank of one PimSystem and
 * grants/releases whole ranks, so two drivers sharing a CommandQueue
 * (an LLM serving engine, a graph update driver) get rank-level
 * isolation — each tenant launches only on ranks it owns, and the bus
 * stays the only shared resource (the interference structure of a real
 * shared PIM serving host, cf. meta_mapper's pim_rankset).
 *
 * Grants are deterministic: acquireRanks hands out the lowest-numbered
 * free ranks, so a co-tenant experiment is reproducible regardless of
 * tenant arrival interleaving. The scheduler is bookkeeping only — it
 * does not enforce that commands stay inside their tenant's grant (the
 * queue cannot know which tenant a DpuSet "belongs" to); drivers are
 * expected to build their DpuSets from the granted set.
 *
 * Fault recovery: quarantine(r) pulls a failed rank out of its
 * tenant's grant (the tenant hears about it via its onRevoke callback)
 * and out of circulation — a quarantined rank is never granted again.
 * When the free pool cannot satisfy a grant, requestRanks() parks the
 * request on a strict-FIFO waiting queue served as releases come in
 * (drive it from CommandQueue::onComplete for completion-driven
 * hand-offs), so contention and replacement-after-failure are
 * non-fatal: the ROADMAP's dynamic multi-tenancy follow-on.
 */

#ifndef PIM_CORE_RANK_SCHEDULER_HH
#define PIM_CORE_RANK_SCHEDULER_HH

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/pim_system.hh"

namespace pim::telemetry {
class Registry;
}

namespace pim::core {

/** Rank-granular ownership arbiter of one PimSystem. */
class RankScheduler
{
  public:
    explicit RankScheduler(const PimSystem &sys);

    /**
     * Start counting arbitration decisions into @p met (nullptr
     * detaches): grants / granted ranks / parked waits / quarantines /
     * releases as "ranks.*" counters, plus a "ranks.free" gauge
     * tracking the free pool. One pointer test when detached.
     */
    void attachMetrics(telemetry::Registry *met);

    /**
     * Try to acquire @p n ranks for @p tenant: grants the n
     * lowest-numbered free ranks as one DpuSet, or nullopt if fewer
     * than n ranks are free (no partial grants). @p tenant must be
     * non-empty — it names the owner in ownerOf() and error messages.
     */
    std::optional<DpuSet> tryAcquireRanks(unsigned n,
                                          const std::string &tenant);

    /** Like tryAcquireRanks, but contention is fatal: use when the
     *  experiment's partitioning must succeed by construction. */
    DpuSet acquireRanks(unsigned n, const std::string &tenant);

    /**
     * Return every rank of @p set to the free pool. Fatal if the set
     * is not rank-granular or contains a rank that is not currently
     * owned (double release / never acquired). Served waiting-queue
     * requests are granted before this returns.
     */
    void releaseRanks(const DpuSet &set);

    /**
     * Owner-checked release: like releaseRanks(set), but additionally
     * fatal if any rank of @p set is not owned by @p tenant — the
     * guard against one tenant tearing down another tenant's grant.
     */
    void releaseRanks(const DpuSet &set, const std::string &tenant);

    /**
     * Release every rank @p tenant currently owns (idempotent: zero
     * ranks is fine). The task-teardown primitive that cannot leak or
     * double-release a grant. @return ranks released.
     */
    unsigned releaseAll(const std::string &tenant);

    /**
     * Full teardown of @p tenant: releaseAll, drop its onRevoke
     * callback, and drop its queued rank requests.
     */
    void removeTenant(const std::string &tenant);

    /**
     * Register @p cb to run whenever one of @p tenant's ranks is
     * revoked by quarantine(); the callback receives the revoked rank
     * after it has already left the tenant's grant (typical reaction:
     * requestRanks() for a replacement, then migrate state).
     */
    void onRevoke(const std::string &tenant,
                  std::function<void(unsigned)> cb);

    /**
     * Quarantine @p rank (it failed): pulled from its owner's grant —
     * firing the owner's onRevoke callback — or from the free pool,
     * and never granted again. Fatal if already quarantined.
     * @return the previous owner ("" if the rank was free).
     */
    std::string quarantine(unsigned rank);

    /** True if @p rank has been quarantined. */
    bool quarantined(unsigned rank) const;

    /**
     * Acquire @p n ranks for @p tenant as soon as they are available:
     * immediately (callback runs before this returns) if the free
     * pool suffices and nobody is queued ahead, else the request
     * parks on a strict-FIFO waiting queue served as ranks are
     * released. FIFO is strict — a small request behind a large one
     * waits — so grant order is deterministic and starvation-free.
     */
    void requestRanks(unsigned n, const std::string &tenant,
                      std::function<void(DpuSet)> cb);

    /** Requests parked on the waiting queue. */
    size_t pendingRequests() const { return waiting_.size(); }

    /** Ranks not currently granted to any tenant. */
    unsigned freeRankCount() const;

    /** Total ranks under arbitration (== system's numRanks). */
    unsigned numRanks() const
    {
        return static_cast<unsigned>(owner_.size());
    }

    /** Owning tenant of rank @p r ("" = free). */
    const std::string &ownerOf(unsigned r) const;

  private:
    /** Grant queued requests while ranks are available (strict FIFO). */
    void serveWaiting();

    const PimSystem &sys_;
    /** Owner name per rank; empty = free. */
    std::vector<std::string> owner_;
    /** Quarantined ranks: never free, never granted. */
    std::vector<bool> quarantined_;
    /** Revocation callbacks by tenant. */
    std::map<std::string, std::function<void(unsigned)>> revokeCbs_;
    /** One parked rank request. */
    struct Request
    {
        unsigned n;
        std::string tenant;
        std::function<void(DpuSet)> cb;
    };
    std::deque<Request> waiting_;
    /** True while serveWaiting runs (re-entry collapses into the
     *  outermost loop). */
    bool serving_ = false;
    /** Metrics sink; nullptr = metrics off. */
    telemetry::Registry *met_ = nullptr;
};

} // namespace pim::core

#endif // PIM_CORE_RANK_SCHEDULER_HH
