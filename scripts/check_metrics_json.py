#!/usr/bin/env python3
"""Schema check for the telemetry `metrics` block in BENCH_*.json.

Every BENCH artifact must be valid JSON; when a `metrics` member is
present (benches run with --metrics), each configuration entry must
carry the full registry shape — counters/gauges/histograms/timeline/slo
— with sane values: non-negative counts, quantiles monotone
(p50 <= p90 <= p95 <= p99 <= max) and inside [min, max], timeline
series all padded to one common length, and SLO violations <= samples.

Usage: check_metrics_json.py BENCH_a.json [BENCH_b.json ...]
Exits non-zero on the first malformed file. Files whose benches were
run without --metrics (no `metrics` member) only get the validity check.
"""

import json
import math
import sys

REGISTRY_KEYS = ("counters", "gauges", "histograms", "timeline", "slo")
HIST_KEYS = ("count", "min", "max", "mean", "p50", "p90", "p95", "p99")


def fail(path, msg):
    sys.exit(f"{path}: {msg}")


def check_histogram(path, name, h):
    for k in HIST_KEYS:
        if k not in h:
            fail(path, f"histogram {name!r} missing key {k!r}")
    if h["count"] < 0:
        fail(path, f"histogram {name!r} has negative count")
    if h["count"] == 0:
        return
    q = [h["p50"], h["p90"], h["p95"], h["p99"]]
    if q != sorted(q):
        fail(path, f"histogram {name!r} quantiles not monotone: {q}")
    if not (h["min"] <= h["p50"] and h["p99"] <= h["max"]):
        fail(path, f"histogram {name!r} quantiles escape [min, max]")


def check_registry(path, cfg, reg):
    for k in REGISTRY_KEYS:
        if k not in reg:
            fail(path, f"metrics[{cfg!r}] missing key {k!r}")
    for name, v in reg["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(path, f"counter {name!r} not a non-negative integer")
    for name, h in reg["histograms"].items():
        check_histogram(path, f"{cfg}/{name}", h)
    tl = reg["timeline"]
    if "cadence_sec" not in tl or "series" not in tl:
        fail(path, f"metrics[{cfg!r}] timeline malformed")
    lengths = {len(s["values"]) for s in tl["series"]}
    if len(lengths) > 1:
        fail(path, f"metrics[{cfg!r}] timeline series lengths differ: "
                   f"{sorted(lengths)}")
    for name, s in reg["slo"].items():
        for k in ("target_sec", "samples", "violations", "attainment_pct",
                  "worst_excursion"):
            if k not in s:
                fail(path, f"slo {name!r} missing key {k!r}")
        if s["violations"] > s["samples"]:
            fail(path, f"slo {name!r} has more violations than samples")
        if not 0.0 <= s["attainment_pct"] <= 100.0:
            fail(path, f"slo {name!r} attainment out of [0, 100]")
    # Optional: host-wall gauges (real elapsed-time measurements such
    # as queue.drain.phase1_sec). Run-varying by nature, but each value
    # must be a finite non-negative number.
    for name, v in reg.get("host_wall", {}).items():
        if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
            fail(path, f"host_wall gauge {name!r} not finite >= 0: {v!r}")


def check_file(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(path, f"invalid JSON: {e}")
    if "metrics" not in doc:
        print(f"{path}: valid JSON, no metrics block (run with --metrics?)")
        return
    if not doc["metrics"]:
        fail(path, "metrics block present but empty")
    for cfg, reg in doc["metrics"].items():
        check_registry(path, cfg, reg)
    print(f"{path}: metrics OK "
          f"({len(doc['metrics'])} configuration(s))")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    for path in sys.argv[1:]:
        check_file(path)


if __name__ == "__main__":
    main()
